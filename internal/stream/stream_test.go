package stream

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"logdiver/internal/parse"
)

// iotaReader yields its payload in reads of varying sizes to exercise short
// reads and block-boundary handling.
type iotaReader struct {
	data []byte
	pos  int
	rng  *rand.Rand
}

func (r *iotaReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := 1 + r.rng.Intn(len(p))
	if n > len(r.data)-r.pos {
		n = len(r.data) - r.pos
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

func TestBlocksReassembleInput(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "line %d with some padding text\n", i)
	}
	input := sb.String()
	for _, blockSize := range []int{1, 7, 64, 1 << 10, 1 << 20} {
		var got bytes.Buffer
		err := Blocks(&iotaReader{data: []byte(input), rng: rand.New(rand.NewSource(int64(blockSize)))}, blockSize,
			func(b []byte) bool { got.Write(b); return true })
		if err != nil {
			t.Fatalf("blockSize %d: %v", blockSize, err)
		}
		if got.String() != input {
			t.Fatalf("blockSize %d: reassembled output differs from input", blockSize)
		}
	}
}

func TestBlocksNoSplitLines(t *testing.T) {
	input := strings.Repeat("aaaa\nbb\ncccccccc\n", 500)
	err := Blocks(strings.NewReader(input), 32, func(b []byte) bool {
		if len(b) == 0 || b[len(b)-1] != '\n' {
			t.Fatalf("block does not end on a line boundary: %q", b)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlocksFinalUnterminatedLine(t *testing.T) {
	var blocks [][]byte
	err := Blocks(strings.NewReader("a\nb\nno newline at end"), 4, func(b []byte) bool {
		blocks = append(blocks, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, b := range blocks {
		all = append(all, b...)
	}
	if string(all) != "a\nb\nno newline at end" {
		t.Fatalf("got %q", all)
	}
}

func TestBlocksOversizedLinePassesThrough(t *testing.T) {
	// A line beyond the per-line acceptance cap is no longer fatal at the
	// block layer: it travels through whole so the parsers can account it
	// as oversize-malformed (lenient) or fail typed (strict).
	long := strings.Repeat("x", MaxLineBytes+2)
	input := "before\n" + long + "\nafter\n"
	var all []byte
	err := Blocks(strings.NewReader(input), 1<<16, func(b []byte) bool {
		all = append(all, b...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(all) != input {
		t.Fatalf("oversized line mangled in transit: got %d bytes, want %d", len(all), len(input))
	}
}

func TestBlocksTooLongLine(t *testing.T) {
	// Beyond the absolute cap the input is not line-structured; both the
	// block reader and the sequential parse.LineReader abort.
	defer func(old int) { parse.AbsMaxLineBytes = old }(parse.AbsMaxLineBytes)
	parse.AbsMaxLineBytes = 1 << 12
	long := strings.Repeat("x", parse.AbsMaxLineBytes+2)
	err := Blocks(strings.NewReader(long), 1<<8, func(b []byte) bool { return true })
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("got %v, want bufio.ErrTooLong", err)
	}
}

func TestNumberedBlocksFirstLine(t *testing.T) {
	// 40 lines, block size small enough to force several blocks; the
	// FirstLine of each block must equal 1 + lines in all prior blocks.
	var input strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&input, "line number %d with some padding\n", i)
	}
	wantFirst := 1
	err := NumberedBlocks(strings.NewReader(input.String()), 100, func(b Block) bool {
		if b.FirstLine != wantFirst {
			t.Fatalf("block FirstLine = %d, want %d", b.FirstLine, wantFirst)
		}
		wantFirst += bytes.Count(b.Data, []byte("\n"))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if wantFirst != 41 {
		t.Fatalf("blocks covered %d lines, want 40", wantFirst-1)
	}
}

func TestForEachLineMatchesBufioScanner(t *testing.T) {
	inputs := []string{
		"a\nb\nc\n",
		"a\r\nb\r\n",
		"no trailing newline",
		"\n\n\n",
		"mixed\r\nendings\nhere\r\n",
		"trailing cr only\r",
	}
	for _, input := range inputs {
		var want []string
		sc := bufio.NewScanner(strings.NewReader(input))
		for sc.Scan() {
			want = append(want, sc.Text())
		}
		var got []string
		ForEachLine([]byte(input), func(line []byte) { got = append(got, string(line)) })
		if len(got) != len(want) {
			t.Fatalf("%q: got %d lines, want %d", input, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q line %d: got %q, want %q", input, i, got[i], want[i])
			}
		}
	}
}

func TestOrderedPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		const n = 2000
		var got []int
		err := Ordered(workers,
			func(emit func(int) bool) error {
				for i := 0; i < n; i++ {
					if !emit(i) {
						break
					}
				}
				return nil
			},
			func(i int) (int, error) { return i * i, nil },
			func(sq int) error { got = append(got, sq); return nil },
		)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers %d: got %d results, want %d", workers, len(got), n)
		}
		for i, sq := range got {
			if sq != i*i {
				t.Fatalf("workers %d: result %d = %d, want %d (order broken)", workers, i, sq, i*i)
			}
		}
	}
}

func TestOrderedApplyError(t *testing.T) {
	boom := errors.New("boom")
	err := Ordered(4,
		func(emit func(int) bool) error {
			for i := 0; ; i++ {
				if !emit(i) {
					return nil
				}
			}
		},
		func(i int) (int, error) {
			if i == 37 {
				return 0, boom
			}
			return i, nil
		},
		func(int) error { return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestOrderedConsumeError(t *testing.T) {
	boom := errors.New("boom")
	var consumed int
	err := Ordered(4,
		func(emit func(int) bool) error {
			for i := 0; ; i++ {
				if !emit(i) {
					return nil
				}
			}
		},
		func(i int) (int, error) { return i, nil },
		func(i int) error {
			consumed++
			if i == 10 {
				return boom
			}
			return nil
		},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if consumed != 11 {
		t.Fatalf("consumed %d items, want 11 (in order, then stop)", consumed)
	}
}

func TestOrderedProduceError(t *testing.T) {
	boom := errors.New("boom")
	var got []int
	err := Ordered(3,
		func(emit func(int) bool) error {
			for i := 0; i < 5; i++ {
				emit(i)
			}
			return boom
		},
		func(i int) (int, error) { return i, nil },
		func(i int) error { got = append(got, i); return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if len(got) != 5 {
		t.Fatalf("consumed %d items before produce error surfaced, want 5", len(got))
	}
}

func TestRanges(t *testing.T) {
	var spans [][2]int
	Ranges(10, 3, func(lo, hi int) bool { spans = append(spans, [2]int{lo, hi}); return true })
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(spans) != len(want) {
		t.Fatalf("got %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("got %v, want %v", spans, want)
		}
	}
	Ranges(0, 3, func(lo, hi int) bool { t.Fatal("emit called for n=0"); return true })
}
