// Package stream provides the building blocks of the parallel streaming
// ingestion layer: a chunked reader that splits an archive into line-aligned
// byte blocks, and an ordered fan-out/fan-in engine that applies a function
// to those blocks on a bounded worker pool while delivering results in
// production order. Together they let the pipeline parse and classify log
// archives on every core while producing output that is byte-identical to a
// sequential scan.
package stream

import (
	"bufio"
	"bytes"
	"io"
	"sync"

	"logdiver/internal/parse"
)

// DefaultBlockSize is the block granularity used by archive ingestion when
// the caller does not choose one. Large enough that per-block overhead
// (channel hops, slice headers) is negligible against parse work; small
// enough that a handful of blocks are in flight per worker.
const DefaultBlockSize = 256 << 10

// MaxLineBytes is the per-line acceptance cap shared with the parsers
// (parse.MaxLineBytes). Lines beyond it still travel through Blocks whole —
// the parsers account them as oversize-malformed — so lenient ingestion can
// skip-and-count an oversized line instead of aborting the archive. Only a
// line beyond parse.AbsMaxLineBytes (input that is not line-structured at
// all) fails Blocks with bufio.ErrTooLong, matching the sequential
// parse.LineReader.
const MaxLineBytes = parse.MaxLineBytes

// Block is one line-aligned chunk of an archive together with the 1-based
// line number of its first line, so parallel block parsers can report
// malformed-line provenance identical to a sequential scan.
type Block struct {
	Data []byte
	// FirstLine is the 1-based archive line number of the block's first line.
	FirstLine int
}

// Blocks reads r as a sequence of byte blocks of roughly blockSize bytes,
// each extended (or shrunk) to end on a line boundary so no line is ever
// split across blocks. Every emitted block is freshly allocated and safe to
// retain or hand to another goroutine. The final block is emitted even when
// the input does not end in a newline. Emission stops without error when
// emit returns false. blockSize < 1 selects DefaultBlockSize.
func Blocks(r io.Reader, blockSize int, emit func(block []byte) bool) error {
	return NumberedBlocks(r, blockSize, func(b Block) bool { return emit(b.Data) })
}

// NumberedBlocks is Blocks with line-number provenance: each emitted Block
// carries the archive line number of its first line.
func NumberedBlocks(r io.Reader, blockSize int, emit func(Block) bool) error {
	if blockSize < 1 {
		blockSize = DefaultBlockSize
	}
	var carry []byte
	line := 1
	buf := make([]byte, blockSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			data := buf[:n]
			if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
				block := make([]byte, 0, len(carry)+i+1)
				block = append(block, carry...)
				block = append(block, data[:i+1]...)
				carry = append(carry[:0], data[i+1:]...)
				first := line
				line += bytes.Count(block, []byte("\n"))
				if !emit(Block{Data: block, FirstLine: first}) {
					return nil
				}
			} else {
				carry = append(carry, data...)
			}
			if len(carry) > parse.AbsMaxLineBytes {
				return bufio.ErrTooLong
			}
		}
		switch err {
		case nil:
		case io.EOF:
			if len(carry) > 0 {
				emit(Block{Data: append([]byte(nil), carry...), FirstLine: line})
			}
			return nil
		default:
			return err
		}
	}
}

// blockBufPool recycles block buffers for OrderedRecycledBlocks. Pooled
// buffers are stored as *[]byte to avoid an allocation per Put.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultBlockSize+(4<<10))
		return &b
	},
}

// pooledNumberedBlocks is NumberedBlocks with each Block.Data built inside a
// buffer drawn from blockBufPool. emit receives the pool handle alongside the
// block; ownership of the buffer passes to the emit callback, which must
// return it to blockBufPool once the block bytes are no longer referenced.
// Buffers never returned (early stop, error) are simply collected.
//
//ldvet:pooled
func pooledNumberedBlocks(r io.Reader, blockSize int, emit func(b Block, buf *[]byte) bool) error {
	if blockSize < 1 {
		blockSize = DefaultBlockSize
	}
	var carry []byte
	line := 1
	buf := make([]byte, blockSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			data := buf[:n]
			if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
				bp := blockBufPool.Get().(*[]byte)
				block := (*bp)[:0]
				block = append(block, carry...)
				block = append(block, data[:i+1]...)
				*bp = block
				carry = append(carry[:0], data[i+1:]...)
				first := line
				line += bytes.Count(block, []byte("\n"))
				if !emit(Block{Data: block, FirstLine: first}, bp) {
					return nil
				}
			} else {
				carry = append(carry, data...)
			}
			if len(carry) > parse.AbsMaxLineBytes {
				return bufio.ErrTooLong
			}
		}
		switch err {
		case nil:
		case io.EOF:
			if len(carry) > 0 {
				bp := blockBufPool.Get().(*[]byte)
				block := append((*bp)[:0], carry...)
				*bp = block
				emit(Block{Data: block, FirstLine: line}, bp)
			}
			return nil
		default:
			return err
		}
	}
}

// OrderedRecycledBlocks is OrderedNumberedBlocks with block-buffer recycling:
// each block's backing buffer is drawn from an internal pool and returned to
// it after consume finishes with the corresponding output. The contract this
// adds over OrderedNumberedBlocks: neither apply's Out value nor consume may
// retain any bytes of the block past consume's return — everything kept must
// be copied (or interned) first. In exchange the steady-state ingestion path
// stops allocating one fresh block per DefaultBlockSize of input.
//
//ldvet:pooled
func OrderedRecycledBlocks[Out any](r io.Reader, blockSize, workers int, apply func(b Block) (Out, error), consume func(Out) error) error {
	type job struct {
		b   Block
		buf *[]byte
	}
	type recycled struct {
		out Out
		buf *[]byte
	}
	return Ordered(workers,
		func(emit func(job) bool) error {
			return pooledNumberedBlocks(r, blockSize, func(b Block, buf *[]byte) bool {
				return emit(job{b: b, buf: buf})
			})
		},
		func(j job) (recycled, error) {
			out, err := apply(j.b)
			return recycled{out: out, buf: j.buf}, err
		},
		func(rc recycled) error {
			err := consume(rc.out)
			if rc.buf != nil {
				blockBufPool.Put(rc.buf)
			}
			return err
		})
}

// ForEachLine splits a block into lines with the exact semantics of
// bufio.ScanLines: lines are terminated by '\n', one trailing '\r' is
// stripped, and a final unterminated line is still yielded. Empty lines are
// yielded too; skipping them is caller policy.
//
//ldvet:pooled
//ldvet:hotpath
func ForEachLine(block []byte, fn func(line []byte)) {
	for len(block) > 0 {
		var line []byte
		if i := bytes.IndexByte(block, '\n'); i >= 0 {
			line, block = block[:i], block[i+1:]
		} else {
			line, block = block, nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		fn(line)
	}
}

// Ordered runs apply over the items yielded by produce on a pool of worker
// goroutines and calls consume exactly once per item, in production order,
// regardless of the order in which workers finish. produce is called on its
// own goroutine and must yield items through emit, stopping when emit
// returns false (which happens after a downstream error). apply runs
// concurrently and must not touch shared mutable state; consume runs on the
// caller's goroutine only. The first error from any of the three callbacks
// cancels the pipeline and is returned.
func Ordered[In, Out any](workers int, produce func(emit func(In) bool) error, apply func(In) (Out, error), consume func(Out) error) error {
	if workers < 1 {
		workers = 1
	}
	type result struct {
		out Out
		err error
	}
	type task struct {
		in  In
		res chan result
	}

	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }

	jobs := make(chan task, workers)
	// order carries one future per item in production order; its capacity
	// bounds how far production can run ahead of consumption.
	order := make(chan chan result, 4*workers)

	var produceErr error
	go func() {
		defer close(jobs)
		defer close(order)
		produceErr = produce(func(in In) bool {
			res := make(chan result, 1)
			select {
			case order <- res:
			case <-done:
				return false
			}
			select {
			case jobs <- task{in: in, res: res}:
			case <-done:
				// The future was queued but no worker will fill it; the
				// consumer is already in drain mode and will not read it.
				return false
			}
			return true
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				out, err := apply(t.in)
				t.res <- result{out: out, err: err}
			}
		}()
	}

	var firstErr error
	for res := range order {
		if firstErr != nil {
			continue // draining after an error; futures may never be filled
		}
		r := <-res
		if r.err != nil {
			firstErr = r.err
			stop()
			continue
		}
		if err := consume(r.out); err != nil {
			firstErr = err
			stop()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return produceErr
}

// OrderedBlocks is the common composition: read r in line-aligned blocks and
// process them with Ordered. It exists so every ingestion site shares one
// tested fan-out shape.
func OrderedBlocks[Out any](r io.Reader, blockSize, workers int, apply func(block []byte) (Out, error), consume func(Out) error) error {
	return Ordered(workers,
		func(emit func([]byte) bool) error { return Blocks(r, blockSize, emit) },
		apply, consume)
}

// OrderedNumberedBlocks is OrderedBlocks with line-number provenance: apply
// receives each block together with the archive line number of its first
// line, so per-block malformed-line accounting can match a sequential scan
// exactly.
func OrderedNumberedBlocks[Out any](r io.Reader, blockSize, workers int, apply func(b Block) (Out, error), consume func(Out) error) error {
	return Ordered(workers,
		func(emit func(Block) bool) error { return NumberedBlocks(r, blockSize, emit) },
		apply, consume)
}

// Ranges yields [lo,hi) index ranges of size at most step covering [0,n),
// through emit, in ascending order. It is the producer used to parallelize
// formatting of in-memory slices (log emission), where the input is already
// materialized and only the indices need sharding.
func Ranges(n, step int, emit func(lo, hi int) bool) {
	if step < 1 {
		step = 1
	}
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		if !emit(lo, hi) {
			return
		}
	}
}
