package stream

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"
)

// TestOrderedRecycledBlocksMatchesNumbered runs the same input through
// OrderedNumberedBlocks and OrderedRecycledBlocks and requires identical
// per-block summaries in identical order. The summaries (checksum, byte and
// line counts, first-line provenance) are computed inside apply because the
// recycled variant forbids retaining block bytes past consume.
func TestOrderedRecycledBlocksMatchesNumbered(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "line %d: some log payload of moderate length %d\n", i, i*i)
	}
	input := b.String()

	type sum struct {
		first, bytes, lines int
		hash                uint64
	}
	digest := func(blk Block) (sum, error) {
		h := fnv.New64a()
		h.Write(blk.Data)
		lines := 0
		ForEachLine(blk.Data, func([]byte) { lines++ })
		return sum{first: blk.FirstLine, bytes: len(blk.Data), lines: lines, hash: h.Sum64()}, nil
	}

	for _, blockSize := range []int{64, 1024, 1 << 20} {
		for _, workers := range []int{1, 4} {
			var want, got []sum
			if err := OrderedNumberedBlocks(strings.NewReader(input), blockSize, workers, digest,
				func(s sum) error { want = append(want, s); return nil }); err != nil {
				t.Fatal(err)
			}
			if err := OrderedRecycledBlocks(strings.NewReader(input), blockSize, workers, digest,
				func(s sum) error { got = append(got, s); return nil }); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("blockSize=%d workers=%d: recycled blocks diverge from numbered blocks (%d vs %d blocks)",
					blockSize, workers, len(got), len(want))
				continue
			}
			total := 0
			for _, s := range want {
				total += s.bytes
			}
			if total != len(input) {
				t.Errorf("blockSize=%d workers=%d: blocks cover %d bytes, input has %d", blockSize, workers, total, len(input))
			}
		}
	}
}

// TestOrderedRecycledBlocksUnterminatedTail checks the final unterminated
// fragment still comes through the pooled path with correct provenance.
func TestOrderedRecycledBlocksUnterminatedTail(t *testing.T) {
	input := "one\ntwo\nthree without newline"
	var lines []string
	var firsts []int
	err := OrderedRecycledBlocks(strings.NewReader(input), 5, 2,
		func(b Block) ([]string, error) {
			var out []string
			ForEachLine(b.Data, func(l []byte) { out = append(out, string(l)) })
			return out, nil
		},
		func(out []string) error { lines = append(lines, out...); firsts = append(firsts, len(out)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"one", "two", "three without newline"}; !reflect.DeepEqual(lines, want) {
		t.Errorf("lines = %q, want %q", lines, want)
	}
}
