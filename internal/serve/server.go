// Package serve is the HTTP query layer of the online subsystem. Handlers
// are thin, read-only views over the latest store.Snapshot: each request
// loads the snapshot pointer exactly once and answers entirely from it, so
// a response is always internally consistent with a single epoch even while
// the ingestion goroutine installs newer snapshots concurrently. Every
// payload carries the epoch it was answered from.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/fleet"
	"logdiver/internal/metrics"
	"logdiver/internal/store"
	"logdiver/internal/version"
)

// Defaults for Config knobs left zero.
const (
	DefaultRequestTimeout = 10 * time.Second
	// DefaultMaxQueryBytes bounds the raw query string; longer requests
	// are rejected with 414 before any handler work.
	DefaultMaxQueryBytes = 1024
	// DefaultMaxBodyBytes bounds request bodies. The only endpoint that
	// reads one is POST /v1/whatif, whose policy configs are bounded by
	// whatif.MaxPolicies and fit comfortably; anything bigger is a client
	// error.
	DefaultMaxBodyBytes = 4096
)

// RestoreInfo describes how the daemon's analysis state came to be at
// boot. It is fixed at startup and reported verbatim by /v1/health and as
// the logdiver_warm_restart gauge, so an operator can always tell whether
// the numbers they are reading were carried over a restart or rebuilt.
type RestoreInfo struct {
	// Mode is "warm" (state restored from disk), "cold" (no usable prior
	// state: persistence disabled or no state file yet), or
	// "cold-fallback" (a state file existed but was rejected; Detail says
	// why, and the history was re-ingested from the archives).
	Mode string `json:"mode"`
	// Detail elaborates: the rejection reason for cold-fallback, the
	// absence reason for cold.
	Detail string `json:"detail,omitempty"`
	// Epoch is the snapshot epoch carried over from the state file (warm
	// and, when the file loaded but its pipeline was rejected, cold-fallback).
	Epoch uint64 `json:"epoch,omitempty"`
	// SavedAt is when the restored state file was written (warm only).
	SavedAt time.Time `json:"saved_at,omitempty"`
}

// Config wires a Server.
type Config struct {
	// Store supplies snapshots. Required unless Fleet is set, in which case
	// it defaults to the fleet manager's merged store — the fleet's merged
	// snapshots then flow through the same cache and ETag machinery as a
	// single machine's.
	Store *store.Store
	// Fleet, when non-nil, puts the server in fleet mode: /v1/fleet/*
	// endpoints are mounted, /v1/health grows a per-shard section and
	// /metrics per-shard gauge families.
	Fleet *fleet.Manager
	// Version is reported by /v1/health.
	Version version.Info
	// Restore, when non-nil, reports the boot provenance on /v1/health and
	// /metrics.
	Restore *RestoreInfo
	// RequestTimeout bounds each request end to end (DefaultRequestTimeout
	// when zero). Requests over budget get 503.
	RequestTimeout time.Duration
	// MaxQueryBytes and MaxBodyBytes bound request size (defaults above).
	MaxQueryBytes int
	MaxBodyBytes  int64
	// DisableCache turns the per-epoch response cache off: every request
	// renders its view from the snapshot. Responses stay byte-identical to
	// cached ones; only the cost per request changes.
	DisableCache bool
	// RateLimit admits at most this many requests per second per client on
	// the data endpoints (token bucket; excess gets 429 + Retry-After).
	// Zero or negative disables per-client rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst capacity (min 1; defaults to
	// 2*RateLimit rounded up when zero).
	RateBurst int
	// MaxClients bounds the rate limiter's tracking map
	// (DefaultMaxClients when zero).
	MaxClients int
	// MaxInFlight bounds concurrently executing data-endpoint requests;
	// excess requests are shed immediately with 503 + Retry-After. Zero or
	// negative disables the bound.
	MaxInFlight int
	// RetryAfter is the Retry-After hint sent with 503 concurrency sheds
	// (DefaultRetryAfter when zero).
	RetryAfter time.Duration
	// Now injects the clock for the ingestion-lag gauge and the rate
	// limiter (time.Now if nil).
	Now func() time.Time
}

// Server is the HTTP API. It implements http.Handler.
type Server struct {
	cfg  Config
	prom *promMetrics
	mux  *http.ServeMux

	// cache is the published per-epoch response cache; see cache.go.
	cache atomic.Pointer[viewCaches]
	// inFlight counts executing data-endpoint requests against
	// cfg.MaxInFlight.
	inFlight atomic.Int64
	// limiter is the per-client token bucket (nil when rate limiting is
	// off); retryAfter is the precomputed 503 Retry-After header value.
	limiter    *clientLimiter
	retryAfter string
}

// Endpoint keys used in metrics labels.
var endpointKeys = []string{
	"health", "outcomes", "scaling", "mtti", "categories", "runs", "runs_list", "whatif", "metrics",
}

// fleetEndpointKeys extends endpointKeys in fleet mode.
var fleetEndpointKeys = []string{
	"fleet_outcomes", "fleet_scaling", "fleet_mtti", "fleet_categories",
}

// New validates cfg and builds the route table.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil && cfg.Fleet != nil {
		cfg.Store = cfg.Fleet.FleetStore()
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = DefaultMaxQueryBytes
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	keys := endpointKeys
	if cfg.Fleet != nil {
		keys = append(append([]string{}, endpointKeys...), fleetEndpointKeys...)
	}
	s := &Server{
		cfg:        cfg,
		prom:       newPromMetrics(keys),
		mux:        http.NewServeMux(),
		retryAfter: strconv.Itoa(int(math.Ceil(cfg.RetryAfter.Seconds()))),
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(math.Ceil(2 * cfg.RateLimit))
		}
		s.limiter = newClientLimiter(cfg.RateLimit, burst, cfg.MaxClients, cfg.Now)
	}
	s.route("GET /v1/health", "health", s.handleHealth)
	s.routeFast("GET /v1/outcomes", "outcomes", s.handleOutcomes)
	s.routeFast("GET /v1/scaling", "scaling", s.handleScaling)
	s.routeFast("GET /v1/mtti", "mtti", s.handleMTTI)
	s.routeFast("GET /v1/categories", "categories", s.handleCategories)
	s.routeFast("GET /v1/runs", "runs_list", s.handleRuns)
	s.route("GET /v1/runs/{apid}", "runs", s.handleRun)
	s.route("POST /v1/whatif", "whatif", s.handleWhatif)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	if cfg.Fleet != nil {
		s.routeFast("GET /v1/fleet/outcomes", "fleet_outcomes", s.handleFleetOutcomes)
		s.routeFast("GET /v1/fleet/scaling", "fleet_scaling", s.handleFleetScaling)
		s.routeFast("GET /v1/fleet/mtti", "fleet_mtti", s.handleFleetMTTI)
		s.routeFast("GET /v1/fleet/categories", "fleet_categories", s.handleFleetCategories)
	}
	return s, nil
}

// guard applies the request-size bounds and, for data endpoints (everything
// but health and metrics — the probes operators need most while the server
// sheds), the admission pipeline around h.
func (s *Server) guard(key string, h http.HandlerFunc) http.HandlerFunc {
	admitted := key != "health" && key != "metrics"
	return func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.RawQuery) > s.cfg.MaxQueryBytes {
			s.writeErr(w, http.StatusRequestURITooLong, "query string too long")
			return
		}
		if admitted {
			if !s.admit(w, r) {
				return
			}
			defer s.release()
		}
		if r.Body != nil && r.Body != http.NoBody {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		h(w, r)
	}
}

// route registers one instrumented, size-bounded, admission-checked,
// deadline-bounded handler. The instrumentation wraps OUTSIDE the timeout
// so the counters see the 503 a timed-out client actually received.
func (s *Server) route(pattern, key string, h http.HandlerFunc) {
	inner := http.Handler(s.guard(key, h))
	if key != "metrics" && key != "health" {
		// Health and metrics stay cheap and deadline-free: they are the
		// probes operators use to diagnose an overloaded server.
		inner = http.TimeoutHandler(inner, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	s.instrument(pattern, key, inner)
}

// routeFast registers a handler outside http.TimeoutHandler: the cacheable
// endpoints answer from pre-encoded bytes or a bounded in-memory render and
// cannot block, so they skip the per-request timeout goroutine and response
// buffer — that is what makes the cached path nearly allocation-free.
// Slow-client writes are bounded by the http.Server write timeout instead.
func (s *Server) routeFast(pattern, key string, h http.HandlerFunc) {
	s.instrument(pattern, key, s.guard(key, h))
}

// instrument mounts inner with the per-endpoint status/latency counters.
func (s *Server) instrument(pattern, key string, inner http.Handler) {
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		began := s.cfg.Now()
		inner.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.prom.observe(key, rec.status, s.cfg.Now().Sub(began))
	}))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve runs the API on l until ctx is canceled, then shuts down
// gracefully, draining in-flight requests for up to drain.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
		// The fast (un-TimeoutHandler-ed) cached endpoints rely on this to
		// bound writes to slow clients.
		WriteTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	return nil
}

// writeJSON encodes v with a status code.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeErr(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, errResponse{Error: msg})
}

// snapshot loads the current snapshot once, answering 503 when ingestion
// has not produced one yet. Handlers must do ALL reads through the returned
// pointer: loading twice could straddle an epoch swap.
func (s *Server) snapshot(w http.ResponseWriter) (*store.Snapshot, bool) {
	snap := s.cfg.Store.Current()
	if snap == nil {
		s.writeErr(w, http.StatusServiceUnavailable, "no snapshot yet: ingestion warming up")
		return nil, false
	}
	return snap, true
}

// ---- /v1/health ----

type healthResponse struct {
	Status  string            `json:"status"`
	Epoch   uint64            `json:"epoch"`
	BuiltAt string            `json:"built_at"`
	Runs    int               `json:"runs"`
	Jobs    int               `json:"jobs"`
	Events  int               `json:"events"`
	Span    string            `json:"span,omitempty"`
	Version version.Info      `json:"version"`
	Ingest  store.IngestStats `json:"ingest"`
	// IngestLagSeconds is the age of the last ingestion poll — the gauge
	// that catches a wedged tail loop even when no data is arriving.
	IngestLagSeconds float64 `json:"ingest_lag_seconds"`
	// Parse surfaces lenient-mode accounting per archive: per-kind
	// malformed counters plus the pairing anomalies (duplicate starts,
	// clamped runs, unmatched exits).
	Parse []core.ArchiveHygiene `json:"parse"`
	// Restore is the boot provenance (warm/cold/cold-fallback), when the
	// daemon reports one.
	Restore *RestoreInfo `json:"restore,omitempty"`
	// Fleet reports per-shard health in fleet mode: the fleet epoch, the
	// partial flag and one row per machine shard.
	Fleet *fleetHealth `json:"fleet,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Store.Current()
	if snap == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "starting",
			"version": s.cfg.Version,
		})
		return
	}
	resp := healthResponse{
		Status:  "ok",
		Epoch:   snap.Epoch,
		BuiltAt: snap.BuiltAt.UTC().Format(time.RFC3339),
		Runs:    len(snap.Result.Runs),
		Jobs:    len(snap.Result.Jobs),
		Events:  len(snap.Result.Events),
		Version: s.cfg.Version,
		Ingest:  snap.Ingest,
		Parse:   snap.Result.Parse.Hygiene(),
		Restore: s.cfg.Restore,
	}
	if !snap.Result.Start.IsZero() {
		resp.Span = fmt.Sprintf("%s .. %s",
			snap.Result.Start.UTC().Format(time.RFC3339),
			snap.Result.End.UTC().Format(time.RFC3339))
	}
	if last, ok := s.cfg.Store.LastSync(); ok {
		resp.IngestLagSeconds = s.cfg.Now().Sub(last).Seconds()
	}
	if s.cfg.Fleet != nil {
		fh, degraded := s.fleetHealthOf()
		resp.Fleet = fh
		if degraded {
			// Degraded, not down: merged responses still serve every healthy
			// shard plus the failed shards' last good snapshots.
			resp.Status = "degraded"
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ---- /v1/outcomes ----

type outcomeRow struct {
	Outcome   string  `json:"outcome"`
	Runs      int     `json:"runs"`
	NodeHours float64 `json:"node_hours"`
}

type outcomesResponse struct {
	Epoch                   uint64       `json:"epoch"`
	TotalRuns               int          `json:"total_runs"`
	TotalNodeHours          float64      `json:"total_node_hours"`
	Outcomes                []outcomeRow `json:"outcomes"`
	SystemFailureFraction   float64      `json:"system_failure_fraction"`
	SystemNodeHoursFraction float64      `json:"system_node_hours_fraction"`
}

// outcomeOrder fixes the row order of the E2 breakdown.
var outcomeOrder = []correlate.Outcome{
	correlate.OutcomeSuccess,
	correlate.OutcomeUserFailure,
	correlate.OutcomeWalltime,
	correlate.OutcomeSystemFailure,
}

func outcomesBody(snap *store.Snapshot) outcomesResponse {
	b := snap.Outcomes
	resp := outcomesResponse{
		Epoch:                   snap.Epoch,
		TotalRuns:               b.Total,
		TotalNodeHours:          b.TotalNodeHours,
		Outcomes:                make([]outcomeRow, 0, len(outcomeOrder)),
		SystemFailureFraction:   b.SystemFailureFraction(),
		SystemNodeHoursFraction: b.SystemNodeHoursFraction(),
	}
	for _, o := range outcomeOrder {
		resp.Outcomes = append(resp.Outcomes, outcomeRow{
			Outcome:   o.String(),
			Runs:      b.Counts[o],
			NodeHours: b.NodeHours[o],
		})
	}
	return resp
}

func renderOutcomes(snap *store.Snapshot) []byte {
	return encodeJSON(outcomesBody(snap))
}

func (s *Server) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	s.serveView(w, r, snap, viewOutcomes, renderOutcomes)
}

// ---- /v1/scaling ----

type scaleRow struct {
	Label    string  `json:"label"`
	Lo       int     `json:"lo"`
	Hi       int     `json:"hi"`
	Runs     int     `json:"runs"`
	Failures int     `json:"failures"`
	Prob     float64 `json:"prob"`
	ProbLo   float64 `json:"prob_lo"`
	ProbHi   float64 `json:"prob_hi"`
}

type scalingResponse struct {
	Epoch   uint64     `json:"epoch"`
	Class   string     `json:"class"`
	Buckets []scaleRow `json:"buckets"`
}

func scalingBody(snap *store.Snapshot, class string, buckets []metrics.ScaleBucket) scalingResponse {
	resp := scalingResponse{Epoch: snap.Epoch, Class: class, Buckets: make([]scaleRow, 0, len(buckets))}
	for _, b := range buckets {
		resp.Buckets = append(resp.Buckets, scaleRow{
			Label:    b.Label(),
			Lo:       b.Lo,
			Hi:       b.Hi,
			Runs:     b.Runs,
			Failures: b.Failures,
			Prob:     b.Prob.P,
			ProbLo:   b.Prob.Lo,
			ProbHi:   b.Prob.Hi,
		})
	}
	return resp
}

func renderScaling(snap *store.Snapshot, class string, buckets []metrics.ScaleBucket) []byte {
	return encodeJSON(scalingBody(snap, class, buckets))
}

func renderScalingXE(snap *store.Snapshot) []byte {
	return renderScaling(snap, "xe", snap.ScalingXE)
}

func renderScalingXK(snap *store.Snapshot) []byte {
	return renderScaling(snap, "xk", snap.ScalingXK)
}

func (s *Server) handleScaling(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	switch class := r.URL.Query().Get("class"); class {
	case "", "xe":
		s.serveView(w, r, snap, viewScalingXE, renderScalingXE)
	case "xk":
		s.serveView(w, r, snap, viewScalingXK, renderScalingXK)
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q: want xe or xk", class))
	}
}

// ---- /v1/mtti ----

type mttiRow struct {
	Lo            int     `json:"lo"`
	Hi            int     `json:"hi"`
	Runs          int     `json:"runs"`
	Interrupts    int     `json:"interrupts"`
	ExposureHours float64 `json:"exposure_hours"`
	MTTIHours     float64 `json:"mtti_hours"`
}

type mttiResponse struct {
	Epoch   uint64    `json:"epoch"`
	Buckets []mttiRow `json:"buckets"`
}

func mttiBody(snap *store.Snapshot) mttiResponse {
	resp := mttiResponse{Epoch: snap.Epoch, Buckets: make([]mttiRow, 0, len(snap.MTTI))}
	for _, b := range snap.MTTI {
		resp.Buckets = append(resp.Buckets, mttiRow{
			Lo:            b.Lo,
			Hi:            b.Hi,
			Runs:          b.Runs,
			Interrupts:    b.Interrupts,
			ExposureHours: b.ExposureHours,
			MTTIHours:     b.MTTIHours,
		})
	}
	return resp
}

func renderMTTI(snap *store.Snapshot) []byte {
	return encodeJSON(mttiBody(snap))
}

func (s *Server) handleMTTI(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	s.serveView(w, r, snap, viewMTTI, renderMTTI)
}

// ---- /v1/categories ----

type categoryRow struct {
	Group         string  `json:"group"`
	Category      string  `json:"category"`
	Failures      int     `json:"failures"`
	NodeHoursLost float64 `json:"node_hours_lost"`
}

type categoriesResponse struct {
	Epoch      uint64        `json:"epoch"`
	Categories []categoryRow `json:"categories"`
}

func categoriesBody(snap *store.Snapshot) categoriesResponse {
	resp := categoriesResponse{Epoch: snap.Epoch, Categories: make([]categoryRow, 0, len(snap.Categories))}
	for _, c := range snap.Categories {
		resp.Categories = append(resp.Categories, categoryRow{
			Group:         c.Group.String(),
			Category:      c.Category.String(),
			Failures:      c.Failures,
			NodeHoursLost: c.NodeHoursLost,
		})
	}
	return resp
}

func renderCategories(snap *store.Snapshot) []byte {
	return encodeJSON(categoriesBody(snap))
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	s.serveView(w, r, snap, viewCategories, renderCategories)
}

// ---- /v1/runs/{apid} ----

type evidenceView struct {
	Time     string `json:"time"`
	Node     string `json:"node,omitempty"`
	Category string `json:"category"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

type runResponse struct {
	Epoch     uint64        `json:"epoch"`
	ApID      uint64        `json:"apid"`
	JobID     string        `json:"job_id"`
	User      string        `json:"user"`
	Cmd       string        `json:"cmd"`
	Width     int           `json:"width"`
	Nodes     int           `json:"nodes"`
	Class     string        `json:"class"`
	Start     string        `json:"start"`
	End       string        `json:"end"`
	DurationS float64       `json:"duration_seconds"`
	ExitCode  int           `json:"exit_code"`
	Signal    int           `json:"signal"`
	Outcome   string        `json:"outcome"`
	Cause     string        `json:"cause,omitempty"`
	Evidence  *evidenceView `json:"evidence,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	apid, err := strconv.ParseUint(r.PathValue("apid"), 10, 64)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad apid %q", r.PathValue("apid")))
		return
	}
	run, ok := snap.Run(apid)
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Sprintf("no run with apid %d in epoch %d", apid, snap.Epoch))
		return
	}
	// The drill-down is a pure function of (snapshot, apid), so it shares
	// the epoch ETag: a client re-fetching within the epoch gets a 304
	// without the render.
	etag := s.etagFor(snap)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", cacheControl)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.prom.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp := runResponse{
		Epoch:     snap.Epoch,
		ApID:      run.ApID,
		JobID:     run.JobID,
		User:      run.User,
		Cmd:       run.Cmd,
		Width:     run.Width,
		Nodes:     len(run.Nodes),
		Class:     run.Class.String(),
		Start:     run.Start.UTC().Format(time.RFC3339),
		End:       run.End.UTC().Format(time.RFC3339),
		DurationS: run.Duration().Seconds(),
		ExitCode:  run.ExitCode,
		Signal:    run.Signal,
		Outcome:   run.Outcome.String(),
	}
	if run.Outcome == correlate.OutcomeSystemFailure {
		resp.Cause = run.Cause.String()
	}
	if run.HasEvidence {
		ev := &evidenceView{
			Time:     run.Evidence.Time.UTC().Format(time.RFC3339),
			Category: run.Evidence.Category.String(),
			Severity: run.Evidence.Severity.String(),
			Message:  run.Evidence.Message,
		}
		if !run.Evidence.IsSystemWide() {
			ev.Node = run.Evidence.Cname
		}
		resp.Evidence = ev
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ---- /metrics ----

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gauges := map[string]float64{
		"logdiver_snapshot_epoch": 0,
		"logdiver_snapshot_runs":  0,
	}
	if snap := s.cfg.Store.Current(); snap != nil {
		gauges["logdiver_snapshot_epoch"] = float64(snap.Epoch)
		gauges["logdiver_snapshot_runs"] = float64(len(snap.Result.Runs))
		gauges["logdiver_snapshot_built_timestamp_seconds"] = float64(snap.BuiltAt.Unix())
	}
	if last, ok := s.cfg.Store.LastSync(); ok {
		gauges["logdiver_ingest_lag_seconds"] = s.cfg.Now().Sub(last).Seconds()
	}
	if s.cfg.Restore != nil {
		// 1 when this process warm-started from persisted state, 0 when it
		// rebuilt cold (including fallback after a rejected state file).
		var warm float64
		if s.cfg.Restore.Mode == "warm" {
			warm = 1
		}
		gauges["logdiver_warm_restart"] = warm
	}
	var families []gaugeFamily
	if s.cfg.Fleet != nil {
		families = s.fleetGauges(gauges)
	}
	s.prom.render(w, gauges, families)
}
