package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"logdiver/internal/machine"
	"logdiver/internal/store"
)

// TestNoMixedEpochReads hammers the query endpoints from many goroutines
// while the writer installs a stream of snapshots, and asserts every
// response is internally consistent with exactly one epoch. The invariant:
// the k-th installed snapshot (epoch k) holds exactly k runs, so any
// response where total_runs != epoch mixed state from two snapshots.
// Run under -race this also proves the pointer-swap publication is sound.
func TestNoMixedEpochReads(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	const (
		epochs  = 60
		readers = 8
	)
	// Pre-build all snapshots so the install loop is pure publication.
	snaps := make([]*store.Snapshot, epochs)
	for i := range snaps {
		snaps[i] = syntheticSnapshot(t, top, i+1)
	}
	st := store.New()
	srv, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Install(snaps[0])

	var (
		stop     atomic.Bool
		checked  atomic.Int64
		wg       sync.WaitGroup
		failOnce sync.Once
		failMsg  string
	)
	fail := func(msg string) {
		failOnce.Do(func() { failMsg = msg })
		stop.Store(true)
	}

	// Readers run a fixed iteration count rather than until the writer
	// finishes: the install loop completes in microseconds, and the
	// invariant (runs == epoch) holds for the final snapshot too, so late
	// reads still check publication consistency.
	const iters = 400
	endpoints := []string{"/v1/outcomes", "/v1/health", "/v1/mtti", "/v1/scaling?class=xe"}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				path := endpoints[(g+i)%len(endpoints)]
				req := httptest.NewRequest("GET", path, nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != 200 {
					fail(fmt.Sprintf("%s: status %d", path, rec.Code))
					return
				}
				var body struct {
					Epoch     uint64 `json:"epoch"`
					TotalRuns *int   `json:"total_runs"`
					Runs      *int   `json:"runs"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail(fmt.Sprintf("%s: bad JSON: %v", path, err))
					return
				}
				runs := -1
				switch {
				case body.TotalRuns != nil:
					runs = *body.TotalRuns
				case body.Runs != nil:
					runs = *body.Runs
				default:
					continue // endpoint without a run count (scaling, mtti)
				}
				if uint64(runs) != body.Epoch {
					fail(fmt.Sprintf("%s: mixed-epoch read: epoch %d with %d runs", path, body.Epoch, runs))
					return
				}
				checked.Add(1)
			}
		}(g)
	}

	for _, s := range snaps[1:] {
		st.Install(s)
		runtime.Gosched()
	}
	wg.Wait()
	if failMsg != "" {
		t.Fatal(failMsg)
	}
	if checked.Load() == 0 {
		t.Fatal("no consistency checks executed")
	}
}

// TestCacheNoStaleEpoch hammers the cached endpoints while the writer races
// epoch installs, asserting the cache can never serve stale bytes: the ETag
// header, the epoch inside the body, and the run count must all agree on
// every single response. The cache is keyed by snapshot pointer, so a
// violation here would mean a handler was handed bytes rendered from a
// snapshot other than the one it loaded.
func TestCacheNoStaleEpoch(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	const (
		epochs  = 50
		readers = 8
		iters   = 300
	)
	snaps := make([]*store.Snapshot, epochs)
	for i := range snaps {
		snaps[i] = syntheticSnapshot(t, top, i+1)
	}
	st := store.New()
	srv, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Install(snaps[0])

	var (
		stop    atomic.Bool
		checked atomic.Int64
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failMsg string
	)
	fail := func(msg string) {
		failMu.Lock()
		if failMsg == "" {
			failMsg = msg
		}
		failMu.Unlock()
		stop.Store(true)
	}

	paths := []string{"/v1/outcomes", "/v1/runs", "/v1/runs?limit=7"}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				path := paths[(g+i)%len(paths)]
				req := httptest.NewRequest("GET", path, nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != 200 {
					fail(fmt.Sprintf("%s: status %d", path, rec.Code))
					return
				}
				var body struct {
					Epoch     uint64 `json:"epoch"`
					Total     *int   `json:"total"`
					TotalRuns *int   `json:"total_runs"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
					fail(fmt.Sprintf("%s: bad JSON: %v", path, err))
					return
				}
				wantETag := fmt.Sprintf("%q", fmt.Sprint(body.Epoch))
				if etag := rec.Header().Get("ETag"); etag != wantETag {
					fail(fmt.Sprintf("%s: stale cache: ETag %s but body epoch %d", path, etag, body.Epoch))
					return
				}
				runs := -1
				if body.Total != nil {
					runs = *body.Total
				} else if body.TotalRuns != nil {
					runs = *body.TotalRuns
				}
				if runs >= 0 && uint64(runs) != body.Epoch {
					fail(fmt.Sprintf("%s: mixed-epoch cached read: epoch %d with %d runs", path, body.Epoch, runs))
					return
				}
				checked.Add(1)
			}
		}(g)
	}

	for _, s := range snaps[1:] {
		st.Install(s)
		runtime.Gosched()
	}
	wg.Wait()
	if failMsg != "" {
		t.Fatal(failMsg)
	}
	if checked.Load() == 0 {
		t.Fatal("no cache consistency checks executed")
	}
}
