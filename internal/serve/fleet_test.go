package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logdiver/internal/fleet"
	"logdiver/internal/gen"
	"logdiver/internal/store"
	"logdiver/internal/version"
)

// testFleetServer boots a 2-shard fleet manager over generated archives and
// serves it; the returned root locates the shard archive dirs for
// fault-injection tests.
func testFleetServer(t *testing.T) (*fleet.Manager, *httptest.Server, string) {
	t.Helper()
	machines := gen.Fleet(2, 1, 17)
	for i := range machines {
		machines[i].Config.Workload.JobsPerDay = 60
	}
	root := t.TempDir()
	var b strings.Builder
	for _, m := range machines {
		ds, err := gen.Generate(m.Config)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(root, m.Name)
		if err := ds.WriteDir(dir); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "[shard %s]\narchive-dir = %s\nmachine = small\n", m.Name, dir)
	}
	cfg, err := fleet.ParseConfig(b.String())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := fleet.NewManager(fleet.ManagerConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(t.Context())
	srv, err := New(Config{Fleet: mgr, Version: version.Get()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return mgr, ts, root
}

func TestFleetEndpointsMergedView(t *testing.T) {
	mgr, ts, _ := testFleetServer(t)
	v := mgr.View()

	var out fleetOutcomesResponse
	if code := getJSON(t, ts.URL+"/v1/fleet/outcomes", &out); code != http.StatusOK {
		t.Fatalf("fleet outcomes status %d", code)
	}
	if out.Epoch != v.FleetEpoch {
		t.Fatalf("fleet outcomes epoch %d, want fleet epoch %d", out.Epoch, v.FleetEpoch)
	}
	if out.Fleet.Partial {
		t.Fatal("healthy fleet reported partial")
	}
	if len(out.Fleet.Shards) != 2 {
		t.Fatalf("epoch vector has %d entries, want 2", len(out.Fleet.Shards))
	}
	var shardRuns int
	for _, st := range v.Shards {
		shardRuns += st.Runs
	}
	if out.TotalRuns != shardRuns {
		t.Fatalf("merged total_runs %d != shard sum %d", out.TotalRuns, shardRuns)
	}

	// The merged scaling, mtti and categories views answer with the vector
	// too, for both classes.
	for _, path := range []string{"/v1/fleet/scaling", "/v1/fleet/scaling?class=xk", "/v1/fleet/mtti", "/v1/fleet/categories"} {
		var any struct {
			Epoch uint64    `json:"epoch"`
			Fleet fleetMeta `json:"fleet"`
		}
		if code := getJSON(t, ts.URL+path, &any); code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
		if any.Epoch != v.FleetEpoch || len(any.Fleet.Shards) != 2 {
			t.Fatalf("%s: epoch %d vector %v", path, any.Epoch, any.Fleet.Shards)
		}
	}

	// Conditional revalidation within the fleet epoch is a 304.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/fleet/outcomes", nil)
	req.Header.Set("If-None-Match", `"`+fmt.Sprint(v.FleetEpoch)+`"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional fleet request status %d, want 304", resp.StatusCode)
	}
}

func TestFleetMachineParam(t *testing.T) {
	mgr, ts, _ := testFleetServer(t)
	v := mgr.View()
	name := v.Shards[0].Name

	var out outcomesResponse
	if code := getJSON(t, ts.URL+"/v1/fleet/outcomes?machine="+name, &out); code != http.StatusOK {
		t.Fatalf("machine view status %d", code)
	}
	if out.Epoch != v.Shards[0].Epoch {
		t.Fatalf("machine view epoch %d, want shard epoch %d", out.Epoch, v.Shards[0].Epoch)
	}
	if out.TotalRuns != v.Shards[0].Runs {
		t.Fatalf("machine view runs %d, want %d", out.TotalRuns, v.Shards[0].Runs)
	}

	// The shard view carries its own machine-scoped entity tag and honors
	// conditional requests.
	resp, err := http.Get(ts.URL + "/v1/fleet/outcomes?machine=" + name)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if want := fmt.Sprintf("%q", fmt.Sprintf("%s-%d", name, v.Shards[0].Epoch)); etag != want {
		t.Fatalf("shard ETag %s, want %s", etag, want)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/fleet/outcomes?machine="+name, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional shard request status %d, want 304", resp.StatusCode)
	}

	var e errResponse
	if code := getJSON(t, ts.URL+"/v1/fleet/outcomes?machine=nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown machine status %d, want 404", code)
	}
}

func TestFleetHealthAndMetrics(t *testing.T) {
	mgr, ts, _ := testFleetServer(t)
	v := mgr.View()

	var h healthResponse
	if code := getJSON(t, ts.URL+"/v1/health", &h); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if h.Status != "ok" || h.Fleet == nil {
		t.Fatalf("health: status=%q fleet=%v", h.Status, h.Fleet)
	}
	if h.Fleet.FleetEpoch != v.FleetEpoch || h.Fleet.Partial {
		t.Fatalf("health fleet: %+v", h.Fleet)
	}
	if len(h.Fleet.Shards) != 2 {
		t.Fatalf("health shard rows: %d", len(h.Fleet.Shards))
	}
	for _, sh := range h.Fleet.Shards {
		if sh.Status != "ok" || sh.Epoch == 0 || sh.Runs == 0 {
			t.Fatalf("shard row %+v", sh)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`logdiver_shard_epoch{machine="` + v.Shards[0].Name + `"} 1`,
		`logdiver_shard_up{machine="` + v.Shards[1].Name + `"} 1`,
		`logdiver_shard_lag_seconds{machine="` + v.Shards[0].Name + `"}`,
		"logdiver_fleet_partial 0",
		"logdiver_fleet_shards 2",
		"logdiver_fleet_epoch 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestFleetDegradedShardServes(t *testing.T) {
	mgr, ts, root := testFleetServer(t)
	before := mgr.View()
	victim := before.Shards[1].Name

	// Replace the victim's syslog with a directory: the next poll fails,
	// the shard degrades, and the fleet keeps serving its last good
	// snapshot merged with the healthy shard.
	syslog := filepath.Join(root, victim, store.SyslogFile)
	if err := os.Remove(syslog); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(syslog, 0o755); err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(t.Context())

	var out fleetOutcomesResponse
	if code := getJSON(t, ts.URL+"/v1/fleet/outcomes", &out); code != http.StatusOK {
		t.Fatalf("degraded fleet outcomes status %d", code)
	}
	if !out.Fleet.Partial {
		t.Fatal("degraded fleet response not marked partial")
	}
	if len(out.Fleet.Shards) != 2 {
		t.Fatalf("degraded vector lost a shard: %v", out.Fleet.Shards)
	}

	var h healthResponse
	getJSON(t, ts.URL+"/v1/health", &h)
	if h.Status != "degraded" || h.Fleet == nil || !h.Fleet.Partial {
		t.Fatalf("degraded health: status=%q fleet=%+v", h.Status, h.Fleet)
	}
	var sawFailed bool
	for _, sh := range h.Fleet.Shards {
		if sh.Name == victim {
			sawFailed = sh.Status == "failed" && sh.Error != ""
		}
	}
	if !sawFailed {
		t.Fatalf("victim %s not reported failed: %+v", victim, h.Fleet.Shards)
	}

	// The failed shard's per-machine view still answers from its last good
	// snapshot.
	var mv outcomesResponse
	if code := getJSON(t, ts.URL+"/v1/fleet/outcomes?machine="+victim, &mv); code != http.StatusOK {
		t.Fatalf("failed shard view status %d", code)
	}
	if mv.TotalRuns == 0 {
		t.Fatal("failed shard view lost its last good snapshot")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"logdiver_fleet_partial 1",
		`logdiver_shard_up{machine="` + victim + `"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("degraded metrics missing %q", want)
		}
	}
}
