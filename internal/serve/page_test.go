package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"logdiver/internal/machine"
	"logdiver/internal/store"
)

// runsPageBody is the decoded /v1/runs response envelope.
type runsPageBody struct {
	Epoch      uint64 `json:"epoch"`
	Total      int    `json:"total"`
	Count      int    `json:"count"`
	NextCursor string `json:"next_cursor"`
	Runs       []struct {
		ApID    uint64 `json:"apid"`
		Class   string `json:"class"`
		Outcome string `json:"outcome"`
	} `json:"runs"`
}

// pagingServer serves a synthetic snapshot with exactly n runs, apids 1..n.
func pagingServer(t *testing.T, n int) (*Server, *store.Store) {
	t.Helper()
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.Install(syntheticSnapshot(t, top, n))
	return newTestServer(t, st, Config{}), st
}

func getRunsPage(t *testing.T, srv *Server, path string) runsPageBody {
	t.Helper()
	rec := get(t, srv, path, nil)
	if rec.Code != 200 {
		t.Fatalf("%s: status %d body %s", path, rec.Code, rec.Body.String())
	}
	var body runsPageBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON: %v", path, err)
	}
	return body
}

// TestRunsPagination is the table-driven /v1/runs suite over a 250-run
// snapshot: first, middle, and last pages, a cursor beyond the end, and
// page-size clamping.
func TestRunsPagination(t *testing.T) {
	const n = 250
	srv, _ := pagingServer(t, n)

	tests := []struct {
		name       string
		path       string
		wantCount  int
		wantFirst  uint64 // apid of first row (0 = no rows)
		wantLast   uint64
		wantCursor string // "" = no next_cursor expected
	}{
		{
			name: "first page default limit", path: "/v1/runs",
			wantCount: 100, wantFirst: 1, wantLast: 100, wantCursor: encodeCursor(100),
		},
		{
			name: "first page small limit", path: "/v1/runs?limit=50",
			wantCount: 50, wantFirst: 1, wantLast: 50, wantCursor: encodeCursor(50),
		},
		{
			name: "middle page", path: "/v1/runs?cursor=" + encodeCursor(100),
			wantCount: 100, wantFirst: 101, wantLast: 200, wantCursor: encodeCursor(200),
		},
		{
			name: "last partial page", path: "/v1/runs?cursor=" + encodeCursor(200),
			wantCount: 50, wantFirst: 201, wantLast: 250, wantCursor: "",
		},
		{
			name: "exactly at end", path: "/v1/runs?cursor=" + encodeCursor(250),
			wantCount: 0, wantCursor: "",
		},
		{
			name: "cursor beyond end", path: "/v1/runs?cursor=" + encodeCursor(99999),
			wantCount: 0, wantCursor: "",
		},
		{
			name: "zero cursor is the first page", path: "/v1/runs?cursor=" + encodeCursor(0) + "&limit=10",
			wantCount: 10, wantFirst: 1, wantLast: 10, wantCursor: encodeCursor(10),
		},
		{
			name: "limit clamped to MaxPageSize", path: "/v1/runs?limit=5000",
			wantCount: n, wantFirst: 1, wantLast: 250, wantCursor: "",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			body := getRunsPage(t, srv, tc.path)
			if body.Total != n {
				t.Errorf("total %d, want %d", body.Total, n)
			}
			if body.Count != tc.wantCount || len(body.Runs) != tc.wantCount {
				t.Fatalf("count %d (rows %d), want %d", body.Count, len(body.Runs), tc.wantCount)
			}
			if body.NextCursor != tc.wantCursor {
				t.Errorf("next_cursor %q, want %q", body.NextCursor, tc.wantCursor)
			}
			if tc.wantCount > 0 {
				if body.Runs[0].ApID != tc.wantFirst {
					t.Errorf("first apid %d, want %d", body.Runs[0].ApID, tc.wantFirst)
				}
				if got := body.Runs[len(body.Runs)-1].ApID; got != tc.wantLast {
					t.Errorf("last apid %d, want %d", got, tc.wantLast)
				}
			}
			for i := 1; i < len(body.Runs); i++ {
				if body.Runs[i].ApID <= body.Runs[i-1].ApID {
					t.Fatalf("rows not strictly ascending at %d: %d then %d",
						i, body.Runs[i-1].ApID, body.Runs[i].ApID)
				}
			}
		})
	}
}

// TestRunsPaginationErrors pins the 400s: malformed or non-canonical
// cursors and bad limits never mis-position silently.
func TestRunsPaginationErrors(t *testing.T) {
	srv, _ := pagingServer(t, 10)
	bad := []string{
		"/v1/runs?cursor=xx:1",
		"/v1/runs?cursor=r1:",
		"/v1/runs?cursor=r1:!!",
		"/v1/runs?cursor=r1:01", // leading zero: non-canonical
		"/v1/runs?cursor=r1:A",  // uppercase: non-canonical
		"/v1/runs?cursor=12345", // missing prefix
		"/v1/runs?limit=0",
		"/v1/runs?limit=-5",
		"/v1/runs?limit=abc",
		"/v1/runs?limit=1.5",
	}
	for _, path := range bad {
		rec := get(t, srv, path, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
		var e errResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: 400 without a JSON error body: %q", path, rec.Body.String())
		}
	}
}

// TestRunsTraversal walks the whole collection through next_cursor links
// and asserts every run is seen exactly once, in ascending apid order.
func TestRunsTraversal(t *testing.T) {
	const n = 137 // not a multiple of the page size: the tail page is short
	srv, _ := pagingServer(t, n)

	seen := make(map[uint64]bool, n)
	cursor := ""
	var lastApID uint64
	for page := 0; ; page++ {
		if page > n {
			t.Fatal("traversal did not terminate")
		}
		path := "/v1/runs?limit=30"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		body := getRunsPage(t, srv, path)
		for _, r := range body.Runs {
			if seen[r.ApID] {
				t.Fatalf("apid %d seen twice", r.ApID)
			}
			if r.ApID <= lastApID {
				t.Fatalf("ordering broke across pages: %d after %d", r.ApID, lastApID)
			}
			seen[r.ApID] = true
			lastApID = r.ApID
		}
		if body.NextCursor == "" {
			break
		}
		cursor = body.NextCursor
	}
	if len(seen) != n {
		t.Fatalf("traversal saw %d runs, want %d", len(seen), n)
	}
}

// TestRunsOrderingStableAcrossEpochs reissues the same cursor after an
// epoch advance: the page holds the same apid sequence (apids are never
// renumbered), and only the reported epoch moves.
func TestRunsOrderingStableAcrossEpochs(t *testing.T) {
	srv, st := pagingServer(t, 120)
	path := "/v1/runs?cursor=" + encodeCursor(40) + "&limit=25"

	before := getRunsPage(t, srv, path)
	snap := *st.Current()
	st.Install(&snap) // epoch 2, same runs
	after := getRunsPage(t, srv, path)

	if before.Epoch != 1 || after.Epoch != 2 {
		t.Fatalf("epochs %d → %d, want 1 → 2", before.Epoch, after.Epoch)
	}
	if len(before.Runs) != len(after.Runs) {
		t.Fatalf("page size changed across epochs: %d → %d", len(before.Runs), len(after.Runs))
	}
	for i := range before.Runs {
		if before.Runs[i].ApID != after.Runs[i].ApID {
			t.Fatalf("row %d changed across epochs: apid %d → %d",
				i, before.Runs[i].ApID, after.Runs[i].ApID)
		}
	}
	if before.NextCursor != after.NextCursor {
		t.Errorf("next_cursor changed across epochs: %q → %q", before.NextCursor, after.NextCursor)
	}
}

// TestCursorRoundTrip pins encode/parse as exact inverses over interesting
// values.
func TestCursorRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 35, 36, 100, 1 << 32, ^uint64(0)} {
		s := encodeCursor(v)
		got, err := parseCursor(s)
		if err != nil || got != v {
			t.Errorf("round trip %d via %q: got %d, err %v", v, s, got, err)
		}
	}
	if v, err := parseCursor(""); err != nil || v != 0 {
		t.Errorf("empty cursor: got %d, err %v", v, err)
	}
}

// FuzzParseCursor asserts cursor parsing never panics and accepts exactly
// the canonical encodings: any accepted token re-encodes to itself.
func FuzzParseCursor(f *testing.F) {
	f.Add("")
	f.Add("r1:0")
	f.Add("r1:zz")
	f.Add("r1:01")
	f.Add("r1:A")
	f.Add("r1:")
	f.Add("xx:5")
	f.Add(encodeCursor(^uint64(0)))
	f.Add("r1:3w5e11264sgsg") // ^uint64(0)+1 territory: overflow must error
	f.Add(strings.Repeat("z", 64))
	f.Fuzz(func(t *testing.T, s string) {
		v, err := parseCursor(s)
		if err != nil {
			return
		}
		if s == "" {
			if v != 0 {
				t.Fatalf("empty cursor parsed to %d", v)
			}
			return
		}
		if got := encodeCursor(v); got != s {
			t.Fatalf("non-canonical token %q accepted (re-encodes to %q)", s, got)
		}
		// Accepted tokens must round-trip through the HTTP layer unescaped.
		if strings.ContainsAny(s, "&=?# %") {
			t.Fatalf("accepted token %q needs URL escaping", s)
		}
	})
}
