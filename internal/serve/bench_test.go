package serve

import (
	"fmt"
	"net/http/httptest"
	"testing"
)

// BenchmarkServeQueries measures per-endpoint request latency against a
// realistic snapshot, handler-direct (no network), one goroutine. The CI
// bench gate tracks these in BENCH_serve.json.
func BenchmarkServeQueries(b *testing.B) {
	st := testStore(b)
	srv, err := New(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	apid := st.Current().Result.Runs[0].ApID
	paths := []struct{ name, path string }{
		{"health", "/v1/health"},
		{"outcomes", "/v1/outcomes"},
		{"scaling", "/v1/scaling?class=xe"},
		{"mtti", "/v1/mtti"},
		{"categories", "/v1/categories"},
		{"runs", fmt.Sprintf("/v1/runs/%d", apid)},
		{"metrics", "/metrics"},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("GET", p.path, nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("%s: status %d", p.path, rec.Code)
				}
			}
		})
	}
}
