package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchWriter is a minimal resettable ResponseWriter: the benchmark loop
// must not allocate per iteration, or the recorder would dominate the
// near-zero-alloc cached serve path it is measuring.
type benchWriter struct {
	h    http.Header
	code int
	n    int64
}

func (w *benchWriter) Header() http.Header { return w.h }

func (w *benchWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *benchWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.n += int64(len(b))
	return len(b), nil
}

func (w *benchWriter) reset() {
	clear(w.h)
	w.code = 0
	w.n = 0
}

// BenchmarkServeQueries measures per-endpoint request cost against a
// realistic snapshot, handler-direct (no network), one goroutine. SetBytes
// reports response bytes on the wire, so the go-bench MB/s column is real
// serving throughput. The CI bench gate tracks these in BENCH_serve.json,
// including absolute min_mbps and max_allocs gates on the cached paths.
func BenchmarkServeQueries(b *testing.B) {
	st := testStore(b)
	srv, err := New(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	apid := st.Current().Result.Runs[0].ApID
	paths := []struct{ name, path string }{
		{"health", "/v1/health"},
		{"outcomes", "/v1/outcomes"},
		{"scaling", "/v1/scaling?class=xe"},
		{"mtti", "/v1/mtti"},
		{"categories", "/v1/categories"},
		{"runs", fmt.Sprintf("/v1/runs/%d", apid)},
		{"runs_list", "/v1/runs"},
		{"metrics", "/metrics"},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			// One warm request through a real recorder: checks status,
			// fills the view cache, and sizes the response for SetBytes.
			warm := httptest.NewRecorder()
			srv.ServeHTTP(warm, httptest.NewRequest("GET", p.path, nil))
			if warm.Code != 200 {
				b.Fatalf("%s: status %d", p.path, warm.Code)
			}
			req := httptest.NewRequest("GET", p.path, nil)
			w := &benchWriter{h: make(http.Header, 8)}
			b.SetBytes(int64(warm.Body.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.reset()
				srv.ServeHTTP(w, req)
				if w.code != 200 {
					b.Fatalf("%s: status %d", p.path, w.code)
				}
			}
		})
	}
}

// BenchmarkServeQueriesGzip measures the cached gzip path: pre-compressed
// bytes served to a client that accepts gzip. SetBytes counts compressed
// bytes on the wire.
func BenchmarkServeQueriesGzip(b *testing.B) {
	st := testStore(b)
	srv, err := New(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	warmReq := httptest.NewRequest("GET", "/v1/outcomes", nil)
	warmReq.Header.Set("Accept-Encoding", "gzip")
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, warmReq)
	if warm.Code != 200 || warm.Header().Get("Content-Encoding") != "gzip" {
		b.Fatalf("warm: status %d encoding %q", warm.Code, warm.Header().Get("Content-Encoding"))
	}
	req := httptest.NewRequest("GET", "/v1/outcomes", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	w := &benchWriter{h: make(http.Header, 8)}
	b.SetBytes(int64(warm.Body.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
		if w.code != 200 {
			b.Fatalf("status %d", w.code)
		}
	}
}

// BenchmarkServeNotModified measures the conditional-request path: a 304
// costs header writes and a counter bump, no body.
func BenchmarkServeNotModified(b *testing.B) {
	st := testStore(b)
	srv, err := New(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("GET", "/v1/outcomes", nil))
	etag := warm.Header().Get("ETag")
	if warm.Code != 200 || etag == "" {
		b.Fatalf("warm: status %d etag %q", warm.Code, etag)
	}
	req := httptest.NewRequest("GET", "/v1/outcomes", nil)
	req.Header.Set("If-None-Match", etag)
	w := &benchWriter{h: make(http.Header, 8)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.ServeHTTP(w, req)
		if w.code != http.StatusNotModified {
			b.Fatalf("status %d, want 304", w.code)
		}
	}
}
