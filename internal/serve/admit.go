package serve

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Admission control. Two independent bounds protect the data endpoints
// from overload, both shedding FAST — a rejected request costs a counter
// bump and a small JSON error, never a queue slot:
//
//   - a per-client token bucket (RateLimit req/s, RateBurst burst) answers
//     429 Too Many Requests with Retry-After when one client out-asks its
//     share;
//   - a global in-flight bound (MaxInFlight) answers 503 Service
//     Unavailable with Retry-After when the server as a whole is at its
//     concurrency limit, regardless of who is asking.
//
// Shedding instead of queueing keeps latency for admitted requests flat at
// saturation: beyond capacity the excess gets an immediate, honest "come
// back later" rather than a slot in a collapsing queue. /v1/health and
// /metrics are exempt — they are the probes an operator needs most when the
// server is busy shedding.

// Admission defaults for Config knobs left zero.
const (
	// DefaultMaxClients bounds the rate limiter's per-client tracking map.
	DefaultMaxClients = 10000
	// DefaultRetryAfter is the Retry-After hint on 503 concurrency sheds.
	DefaultRetryAfter = time.Second
)

// clientLimiter is a per-client token-bucket rate limiter. The map of
// buckets is bounded: when full, fully idle clients (refilled buckets) are
// swept; if every tracked client is active, NEW clients are admitted
// untracked (fail open) — under a flood of distinct client addresses the
// in-flight bound is the backstop, and forgetting an idle bucket can never
// admit more than one extra burst.
type clientLimiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity
	max   int     // tracked-client bound
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newClientLimiter(rate float64, burst, maxClients int, now func() time.Time) *clientLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = DefaultMaxClients
	}
	return &clientLimiter{
		rate:    rate,
		burst:   float64(burst),
		max:     maxClients,
		now:     now,
		clients: make(map[string]*bucket),
	}
}

// allow takes one token from key's bucket. When the bucket is empty it
// returns false and the whole seconds to wait until a token accrues — the
// Retry-After value.
func (l *clientLimiter) allow(key string) (ok bool, retryAfter int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= l.max {
			l.sweep(now)
		}
		if len(l.clients) >= l.max {
			return true, 0 // fail open, untracked
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	}
	b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, int(math.Ceil((1 - b.tokens) / l.rate))
}

// sweep drops buckets that have fully refilled: their clients have been
// idle long enough that forgetting them changes nothing they could do.
func (l *clientLimiter) sweep(now time.Time) {
	for k, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, k)
		}
	}
}

// tracked returns the number of tracked clients (for tests and metrics).
func (l *clientLimiter) tracked() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// clientKey identifies the requesting client for rate limiting: the host
// part of RemoteAddr. Slicing, not net.SplitHostPort, because the common
// "ip:port" form needs no allocation on the hot path.
func clientKey(r *http.Request) string {
	addr := r.RemoteAddr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// admit runs the admission pipeline for one data-endpoint request. It
// returns false after writing the shed response (429 or 503, both with
// Retry-After). On true the caller owes one release().
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			s.prom.shedRateLimit.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.writeErr(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return false
		}
	}
	if s.cfg.MaxInFlight > 0 {
		if n := s.inFlight.Add(1); n > int64(s.cfg.MaxInFlight) {
			s.inFlight.Add(-1)
			s.prom.shedInFlight.Add(1)
			w.Header().Set("Retry-After", s.retryAfter)
			s.writeErr(w, http.StatusServiceUnavailable, "server at concurrency limit")
			return false
		}
	}
	s.prom.admitted.Add(1)
	return true
}

// release returns the in-flight slot admit took.
func (s *Server) release() {
	if s.cfg.MaxInFlight > 0 {
		s.inFlight.Add(-1)
	}
}
