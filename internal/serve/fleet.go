package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"logdiver/internal/fleet"
	"logdiver/internal/store"
)

// Fleet endpoints: the scatter-gather query plane. In fleet mode the
// server's store IS the fleet store, so /v1/fleet/* merged views ride the
// same per-epoch response cache as the single-machine endpoints — the
// cached bytes are rendered from one merged snapshot pointer and carry its
// composite epoch vector, which makes a mixed-epoch fleet response
// impossible by construction. ?machine= narrows any fleet endpoint to one
// shard's last good snapshot, rendered per request under its own
// "<machine>-<epoch>" entity tag.

// fleetMeta rides on every merged fleet response. The embedded epoch of the
// response is the fleet epoch; Shards is the per-machine epoch vector the
// merged snapshot was folded from.
type fleetMeta struct {
	Partial bool               `json:"partial"`
	Shards  []store.ShardEpoch `json:"shards"`
}

func fleetMetaOf(snap *store.Snapshot) fleetMeta {
	return fleetMeta{Partial: snap.Partial, Shards: snap.EpochVector()}
}

type fleetOutcomesResponse struct {
	outcomesResponse
	Fleet fleetMeta `json:"fleet"`
}

type fleetScalingResponse struct {
	scalingResponse
	Fleet fleetMeta `json:"fleet"`
}

type fleetMTTIResponse struct {
	mttiResponse
	Fleet fleetMeta `json:"fleet"`
}

type fleetCategoriesResponse struct {
	categoriesResponse
	Fleet fleetMeta `json:"fleet"`
}

func renderFleetOutcomes(snap *store.Snapshot) []byte {
	return encodeJSON(fleetOutcomesResponse{outcomesBody(snap), fleetMetaOf(snap)})
}

func renderFleetScalingXE(snap *store.Snapshot) []byte {
	return encodeJSON(fleetScalingResponse{scalingBody(snap, "xe", snap.ScalingXE), fleetMetaOf(snap)})
}

func renderFleetScalingXK(snap *store.Snapshot) []byte {
	return encodeJSON(fleetScalingResponse{scalingBody(snap, "xk", snap.ScalingXK), fleetMetaOf(snap)})
}

func renderFleetMTTI(snap *store.Snapshot) []byte {
	return encodeJSON(fleetMTTIResponse{mttiBody(snap), fleetMetaOf(snap)})
}

func renderFleetCategories(snap *store.Snapshot) []byte {
	return encodeJSON(fleetCategoriesResponse{categoriesBody(snap), fleetMetaOf(snap)})
}

// fleetView dispatches one fleet endpoint: the ?machine= per-shard view
// when the parameter is present, otherwise the cached merged view.
func (s *Server) fleetView(w http.ResponseWriter, r *http.Request, view viewID, merged, shard func(*store.Snapshot) []byte) {
	if m := r.URL.Query().Get("machine"); m != "" {
		s.serveShardView(w, r, m, shard)
		return
	}
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	s.serveView(w, r, snap, view, merged)
}

func (s *Server) handleFleetOutcomes(w http.ResponseWriter, r *http.Request) {
	s.fleetView(w, r, viewFleetOutcomes, renderFleetOutcomes, renderOutcomes)
}

func (s *Server) handleFleetScaling(w http.ResponseWriter, r *http.Request) {
	switch class := r.URL.Query().Get("class"); class {
	case "", "xe":
		s.fleetView(w, r, viewFleetScalingXE, renderFleetScalingXE, renderScalingXE)
	case "xk":
		s.fleetView(w, r, viewFleetScalingXK, renderFleetScalingXK, renderScalingXK)
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q: want xe or xk", class))
	}
}

func (s *Server) handleFleetMTTI(w http.ResponseWriter, r *http.Request) {
	s.fleetView(w, r, viewFleetMTTI, renderFleetMTTI, renderMTTI)
}

func (s *Server) handleFleetCategories(w http.ResponseWriter, r *http.Request) {
	s.fleetView(w, r, viewFleetCategories, renderFleetCategories, renderCategories)
}

// serveShardView answers one fleet endpoint narrowed to a single shard. The
// shard's last good snapshot is rendered per request (shard views are the
// rare drill-down; the merged view is the hot path) under an entity tag
// combining the machine name with the shard epoch, so conditional requests
// revalidate exactly like the cached endpoints do.
func (s *Server) serveShardView(w http.ResponseWriter, r *http.Request, machine string, render func(*store.Snapshot) []byte) {
	v := s.cfg.Fleet.View()
	for _, st := range v.Shards {
		if st.Name != machine {
			continue
		}
		if st.Snap == nil {
			s.writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("shard %q has no snapshot yet: ingestion warming up", machine))
			return
		}
		h := w.Header()
		etag := `"` + machine + "-" + strconv.FormatUint(st.Snap.Epoch, 10) + `"`
		h.Set("ETag", etag)
		h.Set("Cache-Control", cacheControl)
		h.Set("Vary", "Accept-Encoding")
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			s.prom.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h.Set("Content-Type", "application/json")
		body := render(st.Snap)
		if acceptsGzip(r) {
			gz := gzipBytes(body)
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(len(gz)))
			_, _ = w.Write(gz)
			return
		}
		h.Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body)
		return
	}
	s.writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q", machine))
}

// ---- /v1/health fleet section ----

// shardHealth is one shard's row in /v1/health. Field order matters to the
// CI smoke checks, which extract adjacent fields from the rendered JSON:
// name, status, epoch, runs, lag, then error.
type shardHealth struct {
	Name       string        `json:"name"`
	Status     string        `json:"status"`
	Epoch      uint64        `json:"epoch"`
	Runs       int           `json:"runs"`
	LagSeconds float64       `json:"lag_seconds"`
	Error      string        `json:"error,omitempty"`
	Restore    fleet.Restore `json:"restore"`
}

type fleetHealth struct {
	FleetEpoch uint64        `json:"fleet_epoch"`
	Partial    bool          `json:"partial"`
	Shards     []shardHealth `json:"shards"`
}

// fleetHealthOf builds the health section from the manager's published
// view; degraded reports whether any shard is down.
func (s *Server) fleetHealthOf() (*fleetHealth, bool) {
	v := s.cfg.Fleet.View()
	fh := &fleetHealth{FleetEpoch: v.FleetEpoch, Partial: v.Partial, Shards: make([]shardHealth, 0, len(v.Shards))}
	now := s.cfg.Now()
	for _, st := range v.Shards {
		sh := shardHealth{
			Name:    st.Name,
			Status:  st.Status,
			Epoch:   st.Epoch,
			Runs:    st.Runs,
			Error:   st.LastError,
			Restore: st.Restore,
		}
		if !st.LastSync.IsZero() {
			sh.LagSeconds = now.Sub(st.LastSync).Seconds()
		}
		fh.Shards = append(fh.Shards, sh)
	}
	return fh, v.Partial
}

// ---- /metrics fleet gauges ----

// fleetGauges builds the per-shard labeled gauge families and folds the
// fleet-wide scalars into gauges.
func (s *Server) fleetGauges(gauges map[string]float64) []gaugeFamily {
	v := s.cfg.Fleet.View()
	gauges["logdiver_fleet_shards"] = float64(len(v.Shards))
	if v.Partial {
		gauges["logdiver_fleet_partial"] = 1
	} else {
		gauges["logdiver_fleet_partial"] = 0
	}
	gauges["logdiver_fleet_epoch"] = float64(v.FleetEpoch)

	epoch := gaugeFamily{
		name:  "logdiver_shard_epoch",
		help:  "Snapshot epoch of each machine shard.",
		label: "machine",
	}
	lag := gaugeFamily{
		name:  "logdiver_shard_lag_seconds",
		help:  "Seconds since each shard's last successful sync.",
		label: "machine",
	}
	up := gaugeFamily{
		name:  "logdiver_shard_up",
		help:  "1 when the shard's pipeline is healthy, 0 when failed or waiting.",
		label: "machine",
	}
	now := s.cfg.Now()
	for _, st := range v.Shards {
		epoch.samples = append(epoch.samples, labeledGauge{st.Name, float64(st.Epoch)})
		var lagS float64
		if !st.LastSync.IsZero() {
			lagS = now.Sub(st.LastSync).Seconds()
		}
		lag.samples = append(lag.samples, labeledGauge{st.Name, lagS})
		var u float64
		if st.Status == "ok" {
			u = 1
		}
		up.samples = append(up.samples, labeledGauge{st.Name, u})
	}
	return []gaugeFamily{epoch, lag, up}
}
