package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"logdiver/internal/store"
	"logdiver/internal/whatif"
)

// post performs one POST /v1/whatif with optional body and headers against
// a Server directly (no network) and returns the recorder.
func post(t testing.TB, srv *Server, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest("POST", path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

const testPolicyConfig = `
[policy daly]
checkpoint = daly
checkpoint-cost = 7m
restart-cost = 12m
retry-limit = 2
retry-backoff = 5m

[policy detect]
detect-fraction = 0.8
`

// whatifETagRe is the documented entity-tag shape: the snapshot epoch plus
// a 64-bit request hash.
var whatifETagRe = regexp.MustCompile(`^"(\d+)-[0-9a-f]{16}"$`)

func TestWhatifEndpoint(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{})

	r1 := post(t, srv, "/v1/whatif?seed=3", testPolicyConfig, nil)
	if r1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", r1.Code, r1.Body.String())
	}
	etag := r1.Header().Get("ETag")
	m := whatifETagRe.FindStringSubmatch(etag)
	if m == nil {
		t.Fatalf("ETag %q does not match epoch-hash form", etag)
	}
	if m[1] != "1" {
		t.Fatalf("ETag epoch %s, want 1", m[1])
	}
	if cc := r1.Header().Get("Cache-Control"); cc != cacheControl {
		t.Errorf("Cache-Control %q, want %q", cc, cacheControl)
	}
	if v := r1.Header().Get("Vary"); v != "Accept-Encoding" {
		t.Errorf("Vary %q, want Accept-Encoding", v)
	}

	var resp struct {
		Epoch    uint64 `json:"epoch"`
		Seed     int64  `json:"seed"`
		Runs     int    `json:"runs"`
		Policies []struct {
			Name string `json:"name"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(r1.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || resp.Seed != 3 || resp.Runs == 0 {
		t.Fatalf("response envelope: %+v", resp)
	}
	if len(resp.Policies) != 2 || resp.Policies[0].Name != "daly" || resp.Policies[1].Name != "detect" {
		t.Fatalf("policies: %+v", resp.Policies)
	}

	// Same request again: identical bytes and ETag (served from cache).
	r2 := post(t, srv, "/v1/whatif?seed=3", testPolicyConfig, nil)
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatal("repeat request changed body within an epoch")
	}
	if r2.Header().Get("ETag") != etag {
		t.Fatal("repeat request changed ETag within an epoch")
	}

	// Conditional revalidation: 304, empty body.
	r3 := post(t, srv, "/v1/whatif?seed=3", testPolicyConfig, map[string]string{"If-None-Match": etag})
	if r3.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match hit: status %d, want 304", r3.Code)
	}
	if r3.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", r3.Body.Len())
	}

	// Different seed and different policies each get their own ETag.
	otherSeed := post(t, srv, "/v1/whatif?seed=4", testPolicyConfig, nil)
	if otherSeed.Header().Get("ETag") == etag {
		t.Error("different seed shares the ETag")
	}
	otherPolicy := post(t, srv, "/v1/whatif?seed=3", "[policy detect]\ndetect-fraction = 0.8\n", nil)
	if otherPolicy.Header().Get("ETag") == etag {
		t.Error("different policies share the ETag")
	}

	// Canonicalization: a differently-spelled but semantically identical
	// config shares the cache entry, byte for byte.
	respelled := strings.ReplaceAll(testPolicyConfig, "7m", "420s")
	respelled = "; a comment\n" + respelled
	r4 := post(t, srv, "/v1/whatif?seed=3", respelled, nil)
	if r4.Header().Get("ETag") != etag {
		t.Errorf("respelled config ETag %q, want %q", r4.Header().Get("ETag"), etag)
	}
	if !bytes.Equal(r4.Body.Bytes(), r1.Body.Bytes()) {
		t.Error("respelled config body differs")
	}

	// Empty body simulates the default policy set.
	rd := post(t, srv, "/v1/whatif", "", nil)
	if rd.Code != http.StatusOK {
		t.Fatalf("default policies: status %d: %s", rd.Code, rd.Body.String())
	}
	var def struct {
		Policies []struct {
			Name string `json:"name"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(rd.Body.Bytes(), &def); err != nil {
		t.Fatal(err)
	}
	if len(def.Policies) != len(whatif.DefaultPolicies()) {
		t.Fatalf("default policy count %d, want %d", len(def.Policies), len(whatif.DefaultPolicies()))
	}

	// gzip negotiation round-trips to the identity bytes.
	rz := post(t, srv, "/v1/whatif?seed=3", testPolicyConfig, map[string]string{"Accept-Encoding": "gzip"})
	if ce := rz.Header().Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(bytes.NewReader(rz.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, r1.Body.Bytes()) {
		t.Fatal("gzip round-trip differs from identity body")
	}
}

func TestWhatifErrors(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{})

	// Malformed policy config: 400 with a parse error.
	r := post(t, srv, "/v1/whatif", "[policy x]\ncheckpoint = sometimes\n", nil)
	if r.Code != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d", r.Code)
	}
	var e errResponse
	if err := json.Unmarshal(r.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "sometimes") {
		t.Fatalf("bad policy error body %q (%v)", r.Body.String(), err)
	}

	// Invalid policy (parses, fails validation): also 400.
	r = post(t, srv, "/v1/whatif", "[policy x]\ncheckpoint = fixed\n", nil)
	if r.Code != http.StatusBadRequest {
		t.Fatalf("invalid policy: status %d", r.Code)
	}

	// Bad seed: 400 naming the value.
	r = post(t, srv, "/v1/whatif?seed=banana", testPolicyConfig, nil)
	if r.Code != http.StatusBadRequest {
		t.Fatalf("bad seed: status %d", r.Code)
	}
	if err := json.Unmarshal(r.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "banana") {
		t.Fatalf("bad seed error body %q (%v)", r.Body.String(), err)
	}

	// Oversized body: 413 from the MaxBytesReader guard.
	big := strings.Repeat("# padding\n", 2*DefaultMaxBodyBytes/10)
	r = post(t, srv, "/v1/whatif", big, nil)
	if r.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", r.Code)
	}

	// GET is not allowed.
	g := get(t, srv, "/v1/whatif", nil)
	if g.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", g.Code)
	}
}

// TestWhatifCachedBytesDifferential pins that the per-epoch report cache
// never changes response bytes: cached and uncached servers agree for both
// representations, at epoch N and after an epoch advance.
func TestWhatifCachedBytesDifferential(t *testing.T) {
	st := testStore(t)
	cached := newTestServer(t, st, Config{})
	uncached := newTestServer(t, st, Config{DisableCache: true})

	check := func(label string) {
		t.Helper()
		for _, seed := range []string{"1", "2"} {
			path := "/v1/whatif?seed=" + seed
			c := post(t, cached, path, testPolicyConfig, nil)
			u := post(t, uncached, path, testPolicyConfig, nil)
			if c.Code != 200 || u.Code != 200 {
				t.Fatalf("%s seed %s: status cached %d uncached %d", label, seed, c.Code, u.Code)
			}
			if !bytes.Equal(c.Body.Bytes(), u.Body.Bytes()) {
				t.Errorf("%s seed %s: cached and uncached bodies differ", label, seed)
			}
			if c.Header().Get("ETag") != u.Header().Get("ETag") {
				t.Errorf("%s seed %s: ETags differ: %q vs %q", label, seed,
					c.Header().Get("ETag"), u.Header().Get("ETag"))
			}
			cz := post(t, cached, path, testPolicyConfig, map[string]string{"Accept-Encoding": "gzip"})
			uz := post(t, uncached, path, testPolicyConfig, map[string]string{"Accept-Encoding": "gzip"})
			if !bytes.Equal(cz.Body.Bytes(), uz.Body.Bytes()) {
				t.Errorf("%s seed %s: cached and uncached gzip bodies differ", label, seed)
			}
		}
	}

	check("epoch N")
	old := post(t, cached, "/v1/whatif?seed=1", testPolicyConfig, nil)
	snap := *st.Current()
	st.Install(&snap) // same data, next epoch
	check("epoch N+1")

	// The old epoch's tag no longer validates and the new tag carries the
	// new epoch.
	r := post(t, cached, "/v1/whatif?seed=1", testPolicyConfig,
		map[string]string{"If-None-Match": old.Header().Get("ETag")})
	if r.Code != 200 {
		t.Fatalf("stale conditional after epoch advance: status %d, want 200", r.Code)
	}
	m := whatifETagRe.FindStringSubmatch(r.Header().Get("ETag"))
	if m == nil || m[1] != "2" {
		t.Fatalf("post-advance ETag %q, want epoch 2", r.Header().Get("ETag"))
	}
}

// TestWhatifCacheCapacity fills the per-epoch report cache past its bound
// and checks overflow requests are still answered correctly, just without
// caching, and that the render counter reflects the uncached work.
func TestWhatifCacheCapacity(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{})

	// Fill the cache with distinct seeds.
	for i := 0; i < whatifCacheMax; i++ {
		r := post(t, srv, fmt.Sprintf("/v1/whatif?seed=%d", i+1), "", nil)
		if r.Code != 200 {
			t.Fatalf("seed %d: status %d", i+1, r.Code)
		}
	}
	renders := srv.prom.whatifRenders.Load()
	if renders != whatifCacheMax {
		t.Fatalf("renders %d, want %d", renders, whatifCacheMax)
	}

	// Overflow request: still 200, rendered uncached, and repeatable.
	over1 := post(t, srv, "/v1/whatif?seed=999", "", nil)
	over2 := post(t, srv, "/v1/whatif?seed=999", "", nil)
	if over1.Code != 200 || over2.Code != 200 {
		t.Fatalf("overflow status %d / %d", over1.Code, over2.Code)
	}
	if !bytes.Equal(over1.Body.Bytes(), over2.Body.Bytes()) {
		t.Fatal("overflow responses differ across renders")
	}
	if got := srv.prom.whatifRenders.Load(); got != renders+2 {
		t.Errorf("overflow renders %d, want %d (each overflow request re-renders)", got, renders+2)
	}

	// Cached entries still serve from cache (no new renders).
	before := srv.prom.whatifRenders.Load()
	if r := post(t, srv, "/v1/whatif?seed=1", "", nil); r.Code != 200 {
		t.Fatalf("cached re-read status %d", r.Code)
	}
	if got := srv.prom.whatifRenders.Load(); got != before {
		t.Errorf("cached re-read rendered again (%d -> %d)", before, got)
	}

	// Epoch advance resets capacity.
	snap := *st.Current()
	st.Install(&snap)
	if r := post(t, srv, "/v1/whatif?seed=999", "", nil); r.Code != 200 {
		t.Fatalf("post-advance status %d", r.Code)
	}
	served := srv.prom.whatifServed.Load()
	if served == 0 {
		t.Error("whatifServed never incremented")
	}
}

// TestWhatifFleetMergedView checks /v1/whatif in fleet mode simulates over
// the merged snapshot and carries the partial flag when a shard degrades.
func TestWhatifFleetMergedView(t *testing.T) {
	mgr, ts, root := testFleetServer(t)
	v := mgr.View()

	postURL := func() (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/whatif", "text/plain", strings.NewReader(testPolicyConfig))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := postURL()
	if code != http.StatusOK {
		t.Fatalf("fleet whatif status %d: %s", code, body)
	}
	var resp struct {
		Epoch   uint64 `json:"epoch"`
		Partial bool   `json:"partial"`
		Runs    int    `json:"runs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	var shardRuns int
	for _, sh := range v.Shards {
		shardRuns += sh.Runs
	}
	if resp.Runs != shardRuns {
		t.Fatalf("simulated %d runs, want fleet total %d", resp.Runs, shardRuns)
	}
	if resp.Partial {
		t.Fatal("healthy fleet whatif reported partial")
	}

	// Degrade one shard: the report stays available, flagged partial.
	syslog := filepath.Join(root, v.Shards[1].Name, store.SyslogFile)
	if err := os.Remove(syslog); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(syslog, 0o755); err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(t.Context())

	code, body = postURL()
	if code != http.StatusOK {
		t.Fatalf("degraded fleet whatif status %d", code)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatal("degraded fleet whatif not marked partial")
	}
}

// TestWhatifMetricsExposed checks the new counters appear on /metrics.
func TestWhatifMetricsExposed(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{})
	post(t, srv, "/v1/whatif", "", nil)
	post(t, srv, "/v1/whatif", "", nil)

	r := get(t, srv, "/metrics", nil)
	if r.Code != 200 {
		t.Fatalf("metrics status %d", r.Code)
	}
	text := r.Body.String()
	for _, want := range []string{
		"logdiver_whatif_renders_total 1",
		"logdiver_whatif_served_total 2",
		`logdiver_http_requests_total{endpoint="whatif"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
