package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"logdiver/internal/machine"
	"logdiver/internal/store"
)

// cacheablePaths are the snapshot-derived endpoints whose responses carry
// the epoch ETag; used by the conformance and differential suites.
var cacheablePaths = []string{
	"/v1/outcomes",
	"/v1/scaling?class=xe",
	"/v1/scaling?class=xk",
	"/v1/mtti",
	"/v1/categories",
	"/v1/runs",
	"/v1/runs?limit=7",
	"/v1/runs?limit=1000",
}

// get performs one request with optional extra headers against a Server
// directly (no network) and returns the recorder.
func get(t testing.TB, srv *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func newTestServer(t testing.TB, st *store.Store, cfg Config) *Server {
	t.Helper()
	cfg.Store = st
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestCachingConformance is the HTTP caching semantics suite: ETag
// stability within an epoch, empty-body 304s on If-None-Match hits,
// invalidation on epoch advance, Vary, and gzip round-trip integrity.
func TestCachingConformance(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{})

	for _, path := range cacheablePaths {
		t.Run(path, func(t *testing.T) {
			// Two plain requests within one epoch: identical ETags and
			// bodies, full caching headers.
			r1 := get(t, srv, path, nil)
			r2 := get(t, srv, path, nil)
			if r1.Code != 200 || r2.Code != 200 {
				t.Fatalf("status %d / %d", r1.Code, r2.Code)
			}
			etag := r1.Header().Get("ETag")
			if etag == "" || etag != `"1"` {
				t.Fatalf("ETag %q, want %q", etag, `"1"`)
			}
			if got := r2.Header().Get("ETag"); got != etag {
				t.Fatalf("ETag changed within an epoch: %q then %q", etag, got)
			}
			if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
				t.Fatal("body changed within an epoch")
			}
			if cc := r1.Header().Get("Cache-Control"); cc != cacheControl {
				t.Errorf("Cache-Control %q, want %q", cc, cacheControl)
			}
			if v := r1.Header().Get("Vary"); v != "Accept-Encoding" {
				t.Errorf("Vary %q, want Accept-Encoding", v)
			}

			// Conditional hit: 304 with an EMPTY body, ETag retained.
			r3 := get(t, srv, path, map[string]string{"If-None-Match": etag})
			if r3.Code != http.StatusNotModified {
				t.Fatalf("If-None-Match hit: status %d, want 304", r3.Code)
			}
			if r3.Body.Len() != 0 {
				t.Fatalf("304 carried %d body bytes", r3.Body.Len())
			}
			if got := r3.Header().Get("ETag"); got != etag {
				t.Errorf("304 ETag %q, want %q", got, etag)
			}

			// Weak-form and list-form If-None-Match also hit.
			for _, inm := range []string{"W/" + etag, `"0", ` + etag, "*"} {
				if rc := get(t, srv, path, map[string]string{"If-None-Match": inm}); rc.Code != 304 {
					t.Errorf("If-None-Match %q: status %d, want 304", inm, rc.Code)
				}
			}
			// A stale tag misses.
			if rc := get(t, srv, path, map[string]string{"If-None-Match": `"999"`}); rc.Code != 200 {
				t.Errorf("stale If-None-Match: status %d, want 200", rc.Code)
			}

			// gzip negotiation: correctly labeled, round-trips to the
			// identity bytes. Dynamic (non-default) /v1/runs pages stream
			// uncompressed by design; their page bound keeps them small.
			rz := get(t, srv, path, map[string]string{"Accept-Encoding": "gzip"})
			if rz.Code != 200 {
				t.Fatalf("gzip status %d", rz.Code)
			}
			if ce := rz.Header().Get("Content-Encoding"); ce != "gzip" {
				if strings.Contains(path, "limit=") {
					if ce != "" {
						t.Fatalf("dynamic page Content-Encoding %q, want identity", ce)
					}
					if !bytes.Equal(rz.Body.Bytes(), r1.Body.Bytes()) {
						t.Fatal("dynamic page body changed under Accept-Encoding")
					}
					return
				}
				t.Fatalf("Content-Encoding %q, want gzip", ce)
			}
			zr, err := gzip.NewReader(bytes.NewReader(rz.Body.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plain, r1.Body.Bytes()) {
				t.Fatal("gzip round-trip differs from identity body")
			}
			if rz.Body.Len() >= r1.Body.Len() {
				t.Errorf("gzip body (%d B) not smaller than identity (%d B)", rz.Body.Len(), r1.Body.Len())
			}
			// Explicit refusal is honoured.
			rn := get(t, srv, path, map[string]string{"Accept-Encoding": "gzip;q=0"})
			if ce := rn.Header().Get("Content-Encoding"); ce != "" {
				t.Errorf("gzip;q=0 got Content-Encoding %q", ce)
			}
		})
	}

	// Epoch advance invalidates: new ETag, fresh body, and a conditional
	// request bearing the OLD tag gets the new full response, not a 304.
	old := get(t, srv, "/v1/outcomes", nil)
	snap := *st.Current()
	st.Install(&snap) // same data, next epoch
	r := get(t, srv, "/v1/outcomes", map[string]string{"If-None-Match": old.Header().Get("ETag")})
	if r.Code != 200 {
		t.Fatalf("stale conditional after epoch advance: status %d, want 200", r.Code)
	}
	if got := r.Header().Get("ETag"); got != `"2"` {
		t.Fatalf("post-advance ETag %q, want %q", got, `"2"`)
	}
	if bytes.Contains(r.Body.Bytes(), []byte(`"epoch": 1`)) || bytes.Contains(r.Body.Bytes(), []byte(`"epoch":1`)) {
		t.Fatal("post-advance body still reports epoch 1")
	}
}

// TestCachedBytesDifferential pins the tentpole invariant: with caching on,
// every cacheable response is byte-for-byte identical to the uncached
// rendering — at epoch N, and again at epoch N+1 after an install, for both
// identity and gzip representations. The run drill-down joins in because it
// shares the conditional-request machinery.
func TestCachedBytesDifferential(t *testing.T) {
	st := testStore(t)
	cached := newTestServer(t, st, Config{})
	uncached := newTestServer(t, st, Config{DisableCache: true})

	apid := st.Current().Result.Runs[0].ApID
	paths := append([]string{fmt.Sprintf("/v1/runs/%d", apid)}, cacheablePaths...)

	// A mid-list cursor page, derived from the default page's next_cursor.
	first := get(t, cached, "/v1/runs", nil)
	var page struct {
		NextCursor string `json:"next_cursor"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.NextCursor != "" {
		paths = append(paths, "/v1/runs?cursor="+page.NextCursor+"&limit=13")
	}

	check := func(epochLabel string) {
		t.Helper()
		for _, path := range paths {
			c := get(t, cached, path, nil)
			u := get(t, uncached, path, nil)
			if c.Code != 200 || u.Code != 200 {
				t.Fatalf("%s %s: status cached %d uncached %d", epochLabel, path, c.Code, u.Code)
			}
			if !bytes.Equal(c.Body.Bytes(), u.Body.Bytes()) {
				t.Errorf("%s %s: cached and uncached bodies differ (%d vs %d bytes)",
					epochLabel, path, c.Body.Len(), u.Body.Len())
			}
			cz := get(t, cached, path, map[string]string{"Accept-Encoding": "gzip"})
			uz := get(t, uncached, path, map[string]string{"Accept-Encoding": "gzip"})
			if !bytes.Equal(cz.Body.Bytes(), uz.Body.Bytes()) {
				t.Errorf("%s %s: cached and uncached gzip bodies differ", epochLabel, path)
			}
			if c.Header().Get("ETag") != u.Header().Get("ETag") {
				t.Errorf("%s %s: ETags differ: %q vs %q", epochLabel, path,
					c.Header().Get("ETag"), u.Header().Get("ETag"))
			}
			// Repeat read from the cache stays stable.
			again := get(t, cached, path, nil)
			if !bytes.Equal(c.Body.Bytes(), again.Body.Bytes()) {
				t.Errorf("%s %s: cached body unstable across reads", epochLabel, path)
			}
		}
	}

	check("epoch N")
	snap := *st.Current()
	st.Install(&snap)
	check("epoch N+1")
}

// TestETagMatch pins the If-None-Match comparison including weak tags,
// lists, wildcard, and misses.
func TestETagMatch(t *testing.T) {
	tests := []struct {
		header, etag string
		want         bool
	}{
		{"", `"3"`, false},
		{`"3"`, `"3"`, true},
		{`"4"`, `"3"`, false},
		{"*", `"3"`, true},
		{`W/"3"`, `"3"`, true},
		{`"1", "2", "3"`, `"3"`, true},
		{`"1", W/"3"`, `"3"`, true},
		{`"1", "2"`, `"3"`, false},
		{` "3" `, `"3"`, true},
	}
	for _, tc := range tests {
		if got := etagMatch(tc.header, tc.etag); got != tc.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", tc.header, tc.etag, got, tc.want)
		}
	}
}

// TestAcceptsGzip pins the Accept-Encoding negotiation.
func TestAcceptsGzip(t *testing.T) {
	tests := []struct {
		ae   string
		want bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate", true},
		{"deflate, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0", false},
		{"deflate", false},
		{"*", true},
		{"identity", false},
		{"GZIP", false}, // content codings are case-insensitive in RFCs, but we only ever see canonical lowercase from real clients
	}
	for _, tc := range tests {
		req := httptest.NewRequest("GET", "/", nil)
		if tc.ae != "" {
			req.Header.Set("Accept-Encoding", tc.ae)
		}
		if got := acceptsGzip(req); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.ae, got, tc.want)
		}
	}
}

// TestCacheForMonotonic exercises the publication CAS: caches for older
// snapshots never displace a published newer one, and every caller gets a
// cache bound to ITS snapshot regardless of publication outcome.
func TestCacheForMonotonic(t *testing.T) {
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	srv := newTestServer(t, st, Config{})
	s1 := syntheticSnapshot(t, top, 1)
	s2 := syntheticSnapshot(t, top, 2)
	st.Install(s1)
	st.Install(s2) // epochs 1 and 2

	c2 := srv.cacheFor(s2)
	if c2.snap != s2 {
		t.Fatal("cacheFor(s2) bound to wrong snapshot")
	}
	c1 := srv.cacheFor(s1)
	if c1.snap != s1 {
		t.Fatal("cacheFor(s1) bound to wrong snapshot")
	}
	// The published cache must still be the newer epoch's.
	if got := srv.cache.Load(); got != c2 {
		t.Fatalf("published cache epoch %d, want %d", got.snap.Epoch, c2.snap.Epoch)
	}
	// And s2 requests keep getting the published one.
	if again := srv.cacheFor(s2); again != c2 {
		t.Fatal("cacheFor(s2) rebuilt despite published cache")
	}
}
