package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"logdiver/internal/correlate"
	"logdiver/internal/store"
)

// Paginated run listing: GET /v1/runs?cursor=...&limit=N.
//
// Runs are ordered by ascending apid — apids are assigned at submission and
// never renumbered, so the order is stable across epochs and a client can
// page through a live daemon without ever seeing a run twice. The cursor is
// an opaque token naming the last apid of the previous page; the first page
// has no cursor. Pages are rendered as bounded streaming JSON: one row is
// marshaled at a time through a fixed-size buffer, so a maximum-size page
// costs the same small memory no matter how many runs the snapshot holds.

const (
	// DefaultPageSize is the /v1/runs page size when the request names
	// none. The default page (no cursor, default limit) is the one every
	// traversal starts from, so it is cached per epoch like the view
	// endpoints.
	DefaultPageSize = 100
	// MaxPageSize clamps client-requested page sizes.
	MaxPageSize = 1000
	// cursorPrefix versions the cursor scheme; unknown prefixes are
	// rejected so the scheme can evolve.
	cursorPrefix = "r1:"
)

// encodeCursor renders the opaque next-page token for a page ending at
// lastApID.
func encodeCursor(lastApID uint64) string {
	return cursorPrefix + strconv.FormatUint(lastApID, 36)
}

// parseCursor decodes a cursor query value. Empty means the first page.
// Only canonical tokens — exactly what encodeCursor produces — parse; any
// other form is a client error, never a panic or a silent misposition.
func parseCursor(s string) (afterApID uint64, err error) {
	if s == "" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(s, cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("unrecognized cursor %q", s)
	}
	v, err := strconv.ParseUint(rest, 36, 64)
	if err != nil {
		return 0, fmt.Errorf("unrecognized cursor %q", s)
	}
	if encodeCursor(v) != s {
		// Non-canonical spellings (leading zeros, uppercase) are rejected
		// so every position has exactly one valid token.
		return 0, fmt.Errorf("unrecognized cursor %q", s)
	}
	return v, nil
}

// runListRow is one /v1/runs row: the fields a consumer needs to decide
// whether to drill into /v1/runs/{apid}.
type runListRow struct {
	ApID      uint64  `json:"apid"`
	JobID     string  `json:"job_id"`
	User      string  `json:"user"`
	Class     string  `json:"class"`
	Nodes     int     `json:"nodes"`
	Width     int     `json:"width"`
	Start     string  `json:"start"`
	End       string  `json:"end"`
	DurationS float64 `json:"duration_seconds"`
	Outcome   string  `json:"outcome"`
	Cause     string  `json:"cause,omitempty"`
}

// writeRunsPage streams one page as compact JSON through a fixed-size
// buffer. The cached default page and the uncached streaming path both go
// through this function, which is what makes them byte-identical.
func writeRunsPage(w io.Writer, snap *store.Snapshot, afterApID uint64, limit int) error {
	runs, last := snap.RunsPage(afterApID, limit)
	bw := bufio.NewWriterSize(w, 4096)
	fmt.Fprintf(bw, `{"epoch":%d,"total":%d,"count":%d,`, snap.Epoch, snap.TotalRuns(), len(runs))
	if len(runs) == limit {
		// A full page may have more behind it; a short page is the end.
		fmt.Fprintf(bw, `"next_cursor":%q,`, encodeCursor(last))
	}
	bw.WriteString(`"runs":[`)
	for i := range runs {
		if i > 0 {
			bw.WriteByte(',')
		}
		row := makeRunListRow(&runs[i])
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func makeRunListRow(run *correlate.AttributedRun) runListRow {
	row := runListRow{
		ApID:      run.ApID,
		JobID:     run.JobID,
		User:      run.User,
		Class:     run.Class.String(),
		Nodes:     len(run.Nodes),
		Width:     run.Width,
		Start:     run.Start.UTC().Format(time.RFC3339),
		End:       run.End.UTC().Format(time.RFC3339),
		DurationS: run.Duration().Seconds(),
		Outcome:   run.Outcome.String(),
	}
	if run.Outcome == correlate.OutcomeSystemFailure {
		row.Cause = run.Cause.String()
	}
	return row
}

// renderRunsFirst renders the cacheable default page.
func renderRunsFirst(snap *store.Snapshot) []byte {
	var buf bytes.Buffer
	_ = writeRunsPage(&buf, snap, 0, DefaultPageSize)
	return buf.Bytes()
}

// handleRuns answers GET /v1/runs. The default page goes through the
// per-epoch view cache; every other (cursor, limit) combination streams.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	after, err := parseCursor(q.Get("cursor"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := DefaultPageSize
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q: want a positive integer", ls))
			return
		}
		limit = min(n, MaxPageSize)
	}
	if after == 0 && limit == DefaultPageSize {
		s.serveView(w, r, snap, viewRunsFirst, renderRunsFirst)
		return
	}
	// Dynamic page: same conditional semantics, streamed body, no gzip
	// (the page bound keeps identity responses small enough).
	etag := s.etagFor(snap)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", cacheControl)
	h.Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.prom.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	_ = writeRunsPage(w, snap, after, limit)
}
