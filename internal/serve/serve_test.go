package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/store"
	"logdiver/internal/version"
)

// testSnapshot builds a store holding one real snapshot over a generated
// dataset, shared across the endpoint tests.
var testSnapCache *store.Snapshot

func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	if testSnapCache == nil {
		cfg := gen.Default()
		cfg.Machine = machine.Small()
		cfg.Days = 2
		cfg.Seed = 5
		cfg.Workload.JobsPerDay = 200
		cfg.Workload.XECapabilityJobsPerDay = 2
		cfg.Workload.XKCapabilityJobsPerDay = 1
		cfg.Workload.XECapabilitySizes = []int{256, 512}
		cfg.Workload.XKCapabilitySizes = []int{64, 160}
		cfg.Workload.FullScaleKneeXE = 512
		cfg.Workload.FullScaleKneeXK = 160
		cfg.Workload.SmallSizeMax = 96
		cfg.Rates.NodeFatalPerNodeHour *= 40
		cfg.Rates.NodeBenignPerNodeHour *= 20
		cfg.Rates.GPUFatalPerNodeHour *= 100
		ds, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var acc, aps, sys strings.Builder
		if err := ds.WriteAccounting(&acc); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteApsys(&aps); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteErrorLog(&sys); err != nil {
			t.Fatal(err)
		}
		res, err := core.Analyze(core.Archives{
			Accounting: strings.NewReader(acc.String()),
			Apsys:      strings.NewReader(aps.String()),
			Syslog:     strings.NewReader(sys.String()),
			Location:   time.UTC,
		}, ds.Topology, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := store.Build(res, ds.Topology, store.IngestStats{Rounds: 1}, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		testSnapCache = snap
	}
	// Install a shallow copy so each test's store assigns its own epoch.
	snap := *testSnapCache
	st.Install(&snap)
	st.MarkSync(time.Now())
	return st
}

func testServer(t testing.TB, st *store.Store) *httptest.Server {
	t.Helper()
	srv, err := New(Config{Store: st, Version: version.Get()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// getJSON fetches url and decodes the body into v, returning the status.
func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content type %q", url, ct)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("%s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestHealthEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	var h healthResponse
	if code := getJSON(t, ts.URL+"/v1/health", &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.Status != "ok" || h.Epoch != 1 || h.Runs == 0 || h.Jobs == 0 {
		t.Fatalf("health: %+v", h)
	}
	if h.Version.GoVersion == "" {
		t.Error("health missing build info")
	}
	if len(h.Parse) != 3 {
		t.Fatalf("want 3 hygiene rows, got %d", len(h.Parse))
	}
	for i, want := range []string{"accounting", "apsys", "syslog"} {
		if h.Parse[i].Archive != want {
			t.Errorf("hygiene row %d: archive %q, want %q", i, h.Parse[i].Archive, want)
		}
		if h.Parse[i].Lines == 0 {
			t.Errorf("hygiene row %q: zero lines", want)
		}
	}
	if h.IngestLagSeconds < 0 {
		t.Errorf("negative ingest lag %g", h.IngestLagSeconds)
	}
	if h.Span == "" {
		t.Error("health missing span")
	}
}

func TestHealthBeforeFirstSnapshot(t *testing.T) {
	ts := testServer(t, store.New())
	var body map[string]any
	if code := getJSON(t, ts.URL+"/v1/health", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	if body["status"] != "starting" {
		t.Errorf("body %v", body)
	}
	// Data endpoints also 503 before the first snapshot.
	var e errResponse
	if code := getJSON(t, ts.URL+"/v1/outcomes", &e); code != http.StatusServiceUnavailable {
		t.Fatalf("outcomes status %d, want 503", code)
	}
	if e.Error == "" {
		t.Error("503 without error body")
	}
}

func TestOutcomesEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	var o outcomesResponse
	if code := getJSON(t, ts.URL+"/v1/outcomes", &o); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if o.Epoch != 1 || o.TotalRuns == 0 {
		t.Fatalf("outcomes: %+v", o)
	}
	if len(o.Outcomes) != 4 {
		t.Fatalf("want 4 outcome rows, got %d", len(o.Outcomes))
	}
	var sum int
	for _, row := range o.Outcomes {
		sum += row.Runs
	}
	if sum != o.TotalRuns {
		t.Errorf("outcome rows sum to %d, total %d", sum, o.TotalRuns)
	}
	if o.SystemFailureFraction < 0 || o.SystemFailureFraction > 1 {
		t.Errorf("system failure fraction %g", o.SystemFailureFraction)
	}
}

func TestScalingEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	for _, class := range []string{"xe", "xk"} {
		var sc scalingResponse
		if code := getJSON(t, ts.URL+"/v1/scaling?class="+class, &sc); code != http.StatusOK {
			t.Fatalf("%s status %d", class, code)
		}
		if sc.Class != class || len(sc.Buckets) == 0 {
			t.Fatalf("%s: %+v", class, sc)
		}
		for _, b := range sc.Buckets {
			if b.Failures > b.Runs {
				t.Errorf("%s bucket %s: %d failures of %d runs", class, b.Label, b.Failures, b.Runs)
			}
			if b.Prob < 0 || b.Prob > 1 || b.ProbLo > b.Prob || b.ProbHi < b.Prob {
				if b.Runs > 0 {
					t.Errorf("%s bucket %s: inconsistent interval %g [%g,%g]", class, b.Label, b.Prob, b.ProbLo, b.ProbHi)
				}
			}
		}
	}
	// Default class is xe.
	var sc scalingResponse
	if code := getJSON(t, ts.URL+"/v1/scaling", &sc); code != http.StatusOK || sc.Class != "xe" {
		t.Fatalf("default class: %d %q", code, sc.Class)
	}
	// Unknown class is a 400.
	var e errResponse
	if code := getJSON(t, ts.URL+"/v1/scaling?class=zz", &e); code != http.StatusBadRequest {
		t.Fatalf("bad class status %d", code)
	}
	if !strings.Contains(e.Error, "zz") {
		t.Errorf("error %q does not name the bad class", e.Error)
	}
}

func TestMTTIEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	var m mttiResponse
	if code := getJSON(t, ts.URL+"/v1/mtti", &m); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if m.Epoch != 1 || len(m.Buckets) == 0 {
		t.Fatalf("mtti: %+v", m)
	}
	for _, b := range m.Buckets {
		if b.Interrupts > 0 && b.MTTIHours <= 0 {
			t.Errorf("bucket [%d,%d): %d interrupts but MTTI %g", b.Lo, b.Hi, b.Interrupts, b.MTTIHours)
		}
	}
}

func TestCategoriesEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	var c categoriesResponse
	if code := getJSON(t, ts.URL+"/v1/categories", &c); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if c.Epoch != 1 || len(c.Categories) == 0 {
		t.Fatalf("categories: %+v", c)
	}
	for i := 1; i < len(c.Categories); i++ {
		if c.Categories[i].Failures > c.Categories[i-1].Failures {
			t.Error("categories not sorted by descending failures")
		}
	}
}

func TestRunEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	want := st.Current().Result.Runs[0]
	var r runResponse
	url := fmt.Sprintf("%s/v1/runs/%d", ts.URL, want.ApID)
	if code := getJSON(t, url, &r); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r.ApID != want.ApID || r.JobID != want.JobID || r.Nodes != len(want.Nodes) {
		t.Fatalf("run: got %+v, want apid=%d job=%s nodes=%d", r, want.ApID, want.JobID, len(want.Nodes))
	}
	if r.Outcome != want.Outcome.String() {
		t.Errorf("outcome %q, want %q", r.Outcome, want.Outcome)
	}
	// A system failure somewhere in the dataset must expose its evidence.
	var sysFail *correlate.AttributedRun
	for i := range st.Current().Result.Runs {
		rr := &st.Current().Result.Runs[i]
		if rr.Outcome == correlate.OutcomeSystemFailure && rr.HasEvidence {
			sysFail = rr
			break
		}
	}
	if sysFail == nil {
		t.Fatal("dataset has no system failure with evidence; cannot test drill-down")
	}
	var fr runResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/runs/%d", ts.URL, sysFail.ApID), &fr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if fr.Cause == "" || fr.Evidence == nil || fr.Evidence.Message == "" {
		t.Fatalf("system failure drill-down missing cause/evidence: %+v", fr)
	}

	// Unknown apid: 404. Malformed apid: 400.
	var e errResponse
	if code := getJSON(t, ts.URL+"/v1/runs/999999999", &e); code != http.StatusNotFound {
		t.Fatalf("unknown apid status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/runs/notanumber", &e); code != http.StatusBadRequest {
		t.Fatalf("bad apid status %d", code)
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	resp, err := http.Post(ts.URL+"/v1/outcomes", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", resp.StatusCode)
	}
}

func TestQueryLimit(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	var e errResponse
	long := strings.Repeat("x", 2*DefaultMaxQueryBytes)
	if code := getJSON(t, ts.URL+"/v1/scaling?pad="+long, &e); code != http.StatusRequestURITooLong {
		t.Fatalf("oversized query status %d, want 414", code)
	}
}

// TestRequestTimeout wires a deliberately slow handler through the same
// route chain as the real endpoints and asserts the deadline converts it
// into the canonical 503, visible to the error counters.
func TestRequestTimeout(t *testing.T) {
	st := testStore(t)
	srv, err := New(Config{Store: st, RequestTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv.route("GET /v1/slow", "outcomes", func(w http.ResponseWriter, r *http.Request) {
		<-block
	})
	defer close(block)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("body %q", body)
	}
	if got := srv.prom.endpoints["outcomes"].errors.Load(); got != 1 {
		t.Errorf("error counter %d, want 1 (timeout must be observed)", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	st := testStore(t)
	ts := testServer(t, st)
	// Generate some traffic first so counters are nonzero.
	getJSON(t, ts.URL+"/v1/outcomes", nil)
	getJSON(t, ts.URL+"/v1/outcomes", nil)
	var e errResponse
	getJSON(t, ts.URL+"/v1/scaling?class=zz", &e)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`logdiver_http_requests_total{endpoint="outcomes"} 2`,
		`logdiver_http_errors_total{endpoint="scaling"} 1`,
		`logdiver_http_request_duration_seconds_count{endpoint="outcomes"} 2`,
		"logdiver_snapshot_epoch 1",
		"logdiver_ingest_lag_seconds",
		"logdiver_snapshot_runs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted nil store")
	}
}

// syntheticSnapshot builds a snapshot with exactly n runs; used by the race
// and consistency tests, where run count must be a pure function of epoch.
func syntheticSnapshot(t testing.TB, top *machine.Topology, n int) *store.Snapshot {
	t.Helper()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	runs := make([]correlate.AttributedRun, n)
	for i := range runs {
		runs[i] = correlate.AttributedRun{
			AppRun: alps.AppRun{
				ApID:  uint64(i + 1),
				Nodes: []machine.NodeID{machine.NodeID(i % 8)},
				Start: base.Add(time.Duration(i) * time.Minute),
				End:   base.Add(time.Duration(i+1) * time.Minute),
			},
			Class:   machine.ClassXE,
			Outcome: correlate.OutcomeSuccess,
		}
	}
	res := &core.Result{Runs: runs}
	snap, err := store.Build(res, top, store.IngestStats{}, base)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}
