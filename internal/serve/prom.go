package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// endpointStats are the per-endpoint request counters. All fields are
// atomics: handlers on any goroutine bump them lock-free and the /metrics
// scrape reads them the same way.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	// durationNanos accumulates total handler wall time.
	durationNanos atomic.Int64
}

// promMetrics is the hand-rolled, stdlib-only Prometheus registry. The
// endpoint map is built once at server construction and never mutated, so
// concurrent reads need no lock.
type promMetrics struct {
	endpoints map[string]*endpointStats
	// Admission counters: every data-endpoint request is either admitted
	// or shed for exactly one reason, so
	// admitted + shed(rate_limit) + shed(inflight) equals the requests the
	// admission layer saw.
	admitted      atomic.Uint64
	shedRateLimit atomic.Uint64
	shedInFlight  atomic.Uint64
	// notModified counts conditional requests answered 304 from the epoch
	// ETag without a body.
	notModified atomic.Uint64
	// cacheServed counts responses answered from pre-encoded cached view
	// bytes; cacheRenders counts the once-per-epoch view renders behind
	// them. served - renders is the work the cache saved.
	cacheServed  atomic.Uint64
	cacheRenders atomic.Uint64
	// whatifServed counts /v1/whatif responses answered from the per-epoch
	// report cache; whatifRenders counts actual simulations (cache fills
	// plus uncached renders). served - renders is the simulation work the
	// cache saved.
	whatifServed  atomic.Uint64
	whatifRenders atomic.Uint64
}

func newPromMetrics(endpoints []string) *promMetrics {
	m := &promMetrics{endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

// observe records one finished request.
func (m *promMetrics) observe(endpoint string, status int, took time.Duration) {
	st := m.endpoints[endpoint]
	if st == nil {
		return
	}
	st.requests.Add(1)
	if status >= 400 {
		st.errors.Add(1)
	}
	st.durationNanos.Add(int64(took))
}

// labeledGauge is one sample of a labeled gauge family.
type labeledGauge struct {
	labelValue string
	value      float64
}

// gaugeFamily is a gauge with one label dimension (the fleet per-shard
// gauges: one sample per machine). Samples render in the order given;
// callers pass them pre-sorted.
type gaugeFamily struct {
	name, help, label string
	samples           []labeledGauge
}

// render writes the Prometheus text exposition format. Gauges describing
// the serving state (snapshot epoch, run count, ingestion lag) and the
// labeled families (per-shard gauges in fleet mode) come from the caller so
// the registry stays decoupled from the store.
func (m *promMetrics) render(w http.ResponseWriter, gauges map[string]float64, families []gaugeFamily) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	keys := make([]string, 0, len(m.endpoints))
	for k := range m.endpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	b.WriteString("# HELP logdiver_http_requests_total Requests served, by endpoint.\n")
	b.WriteString("# TYPE logdiver_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "logdiver_http_requests_total{endpoint=%q} %d\n", k, m.endpoints[k].requests.Load())
	}
	b.WriteString("# HELP logdiver_http_errors_total Requests answered with status >= 400, by endpoint.\n")
	b.WriteString("# TYPE logdiver_http_errors_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "logdiver_http_errors_total{endpoint=%q} %d\n", k, m.endpoints[k].errors.Load())
	}
	b.WriteString("# HELP logdiver_http_request_duration_seconds Total handler wall time, by endpoint.\n")
	b.WriteString("# TYPE logdiver_http_request_duration_seconds counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "logdiver_http_request_duration_seconds_sum{endpoint=%q} %g\n",
			k, time.Duration(m.endpoints[k].durationNanos.Load()).Seconds())
		fmt.Fprintf(&b, "logdiver_http_request_duration_seconds_count{endpoint=%q} %d\n",
			k, m.endpoints[k].requests.Load())
	}

	b.WriteString("# HELP logdiver_http_admitted_total Data-endpoint requests admitted past rate limiting and the in-flight bound.\n")
	b.WriteString("# TYPE logdiver_http_admitted_total counter\n")
	fmt.Fprintf(&b, "logdiver_http_admitted_total %d\n", m.admitted.Load())
	b.WriteString("# HELP logdiver_http_shed_total Data-endpoint requests shed by admission control, by reason.\n")
	b.WriteString("# TYPE logdiver_http_shed_total counter\n")
	fmt.Fprintf(&b, "logdiver_http_shed_total{reason=\"rate_limit\"} %d\n", m.shedRateLimit.Load())
	fmt.Fprintf(&b, "logdiver_http_shed_total{reason=\"inflight\"} %d\n", m.shedInFlight.Load())
	b.WriteString("# HELP logdiver_http_not_modified_total Conditional requests answered 304 from the epoch ETag.\n")
	b.WriteString("# TYPE logdiver_http_not_modified_total counter\n")
	fmt.Fprintf(&b, "logdiver_http_not_modified_total %d\n", m.notModified.Load())
	b.WriteString("# HELP logdiver_cache_served_total Responses served from pre-encoded per-epoch cached bytes.\n")
	b.WriteString("# TYPE logdiver_cache_served_total counter\n")
	fmt.Fprintf(&b, "logdiver_cache_served_total %d\n", m.cacheServed.Load())
	b.WriteString("# HELP logdiver_cache_renders_total Once-per-epoch view renders filling the response cache.\n")
	b.WriteString("# TYPE logdiver_cache_renders_total counter\n")
	fmt.Fprintf(&b, "logdiver_cache_renders_total %d\n", m.cacheRenders.Load())
	b.WriteString("# HELP logdiver_whatif_served_total /v1/whatif responses served from the per-epoch report cache.\n")
	b.WriteString("# TYPE logdiver_whatif_served_total counter\n")
	fmt.Fprintf(&b, "logdiver_whatif_served_total %d\n", m.whatifServed.Load())
	b.WriteString("# HELP logdiver_whatif_renders_total Counterfactual simulations run to answer /v1/whatif.\n")
	b.WriteString("# TYPE logdiver_whatif_renders_total counter\n")
	fmt.Fprintf(&b, "logdiver_whatif_renders_total %d\n", m.whatifRenders.Load())

	gkeys := make([]string, 0, len(gauges))
	for k := range gauges {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	for _, k := range gkeys {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", k, k, gauges[k])
	}
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s{%s=%q} %g\n", f.name, f.label, s.labelValue, s.value)
		}
	}
	_, _ = w.Write([]byte(b.String()))
}

// statusRecorder captures the status code a handler writes, so the
// instrumentation wrapper outside http.TimeoutHandler sees the status the
// client actually received (including the timeout 503).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}
