package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"logdiver/internal/store"
	"logdiver/internal/whatif"
)

// POST /v1/whatif — counterfactual resilience simulation over the current
// snapshot. The body is a policy config (whatif.ParsePolicies format;
// empty body = the default policy set), ?seed=N selects the replication
// seed. A report is a pure function of (snapshot, policies, seed), so
// results cache per snapshot epoch exactly like the GET views: the entity
// tag is "<epoch>-<request hash>" and revalidation within an epoch is a
// bodyless 304. In fleet mode the snapshot is the merged fleet view, so
// the simulation is automatically fleet-wide (the `partial` flag carries
// through when a shard is degraded).

// whatifCacheMax bounds how many distinct (policies, seed) reports are
// cached per epoch. Overflow requests are still answered — rendered
// directly, just not cached.
const whatifCacheMax = 64

// whatifCache is the per-epoch dynamic report cache hung off viewCaches.
// Unlike the fixed view array it is keyed by request material, so it needs
// a lock; entries are pre-encoded cachedViews like every other view.
type whatifCache struct {
	mu      sync.Mutex
	entries map[string]*cachedView
}

// view returns the cached report for key, rendering it on first use.
// full=false means the cache is at capacity and the caller must render
// uncached.
func (c *whatifCache) view(key string, render func() []byte, renders *atomic.Uint64) (*cachedView, bool) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*cachedView)
	}
	cv, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= whatifCacheMax {
			c.mu.Unlock()
			return nil, false
		}
		cv = &cachedView{}
		c.entries[key] = cv
	}
	c.mu.Unlock()
	cv.once.Do(func() {
		body := render()
		cv.body = body
		cv.gz = gzipBytes(body)
		cv.bodyLen = strconv.Itoa(len(body))
		cv.gzLen = strconv.Itoa(len(cv.gz))
		renders.Add(1)
	})
	return cv, true
}

// whatifResponse wraps the simulation report with the serving envelope.
type whatifResponse struct {
	Epoch uint64 `json:"epoch"`
	// Partial is set in fleet mode when the merged snapshot is missing a
	// failed shard's fresh data (degraded-but-serving).
	Partial bool `json:"partial,omitempty"`
	*whatif.Report
}

// whatifKey is the exact cache key: canonical policy rendering plus seed.
// Canonicalization (via PoliciesString) makes differently-spelled configs
// with identical semantics share a cache entry.
func whatifKey(spec string, seed int64) string {
	return strconv.FormatInt(seed, 10) + "\n" + spec
}

// whatifETag derives the entity tag: the snapshot epoch plus a hash of the
// request material, so distinct requests validate independently while all
// of them expire together when the epoch advances.
func whatifETag(snap *store.Snapshot, key string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	return fmt.Sprintf("\"%d-%016x\"", snap.Epoch, h.Sum64())
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("policy config exceeds %d bytes", tooLarge.Limit))
			return
		}
		s.writeErr(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var policies []whatif.Policy
	if strings.TrimSpace(string(body)) == "" {
		policies = whatif.DefaultPolicies()
	} else {
		policies, err = whatif.ParsePolicies(string(body))
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	seed := int64(1)
	if q := r.URL.Query().Get("seed"); q != "" {
		seed, err = strconv.ParseInt(q, 10, 64)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad seed %q", q))
			return
		}
	}

	spec := whatif.PoliciesString(policies)
	key := whatifKey(spec, seed)
	etag := whatifETag(snap, key)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", cacheControl)
	h.Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.prom.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	render := func() []byte {
		rep, err := whatif.Simulate(whatif.Input{Runs: snap.Result.Runs, MTTI: snap.MTTI}, policies, whatif.Options{Seed: seed})
		if err != nil {
			// Policies were validated at parse; this is unreachable, but a
			// JSON error body beats a panic if an invariant ever breaks.
			return encodeJSON(errResponse{Error: err.Error()})
		}
		return encodeJSON(whatifResponse{Epoch: snap.Epoch, Partial: snap.Partial, Report: rep})
	}

	h.Set("Content-Type", "application/json")
	if !s.cfg.DisableCache {
		if cv, ok := s.cacheFor(snap).whatif.view(key, render, &s.prom.whatifRenders); ok {
			s.prom.whatifServed.Add(1)
			if acceptsGzip(r) {
				h.Set("Content-Encoding", "gzip")
				h.Set("Content-Length", cv.gzLen)
				_, _ = w.Write(cv.gz)
				return
			}
			h.Set("Content-Length", cv.bodyLen)
			_, _ = w.Write(cv.body)
			return
		}
	}
	bodyOut := render()
	s.prom.whatifRenders.Add(1)
	if acceptsGzip(r) {
		gz := gzipBytes(bodyOut)
		h.Set("Content-Encoding", "gzip")
		h.Set("Content-Length", strconv.Itoa(len(gz)))
		_, _ = w.Write(gz)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(bodyOut)))
	_, _ = w.Write(bodyOut)
}
