package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable clock for the rate-limiter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestClientLimiter pins the token-bucket mechanics: burst capacity, refill
// rate, and the Retry-After computation, all against an injected clock.
func TestClientLimiter(t *testing.T) {
	clk := newFakeClock()
	l := newClientLimiter(1, 3, 0, clk.Now)

	// The full burst is available immediately; the next request is denied
	// with a one-second wait (rate 1/s, zero tokens).
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.allow("a")
	if ok || retry != 1 {
		t.Fatalf("after burst: ok=%v retry=%d, want denied retry=1", ok, retry)
	}

	// Half a second refills half a token: still denied, still a 1s hint
	// (Retry-After rounds up).
	clk.Advance(500 * time.Millisecond)
	if ok, retry := l.allow("a"); ok || retry != 1 {
		t.Fatalf("at +0.5s: ok=%v retry=%d, want denied retry=1", ok, retry)
	}
	// A full second from the denial, one token has accrued.
	clk.Advance(500 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("token not refilled after 1s")
	}

	// Clients are independent: b still has its whole burst.
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("b"); !ok {
			t.Fatalf("client b request %d denied", i)
		}
	}

	// Refill never exceeds the burst capacity.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("burst capacity exceeded after long idle")
	}
}

// TestClientLimiterRetryAfterScales checks the wait hint reflects the
// configured rate: at 0.2 req/s an empty bucket needs 5 seconds.
func TestClientLimiterRetryAfterScales(t *testing.T) {
	clk := newFakeClock()
	l := newClientLimiter(0.2, 1, 0, clk.Now)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("first request denied")
	}
	if ok, retry := l.allow("a"); ok || retry != 5 {
		t.Fatalf("ok=%v retry=%d, want denied retry=5", ok, retry)
	}
}

// TestClientLimiterBound pins the bounded-map behavior: idle clients are
// swept to make room, and when every tracked client is active the limiter
// fails open rather than blocking new clients or growing without bound.
func TestClientLimiterBound(t *testing.T) {
	clk := newFakeClock()
	l := newClientLimiter(1, 2, 2, clk.Now)

	l.allow("a")
	l.allow("b")
	if got := l.tracked(); got != 2 {
		t.Fatalf("tracked %d, want 2", got)
	}

	// Map full, both clients active (not refilled): c is admitted untracked.
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("fail-open admission denied")
	}
	if got := l.tracked(); got != 2 {
		t.Fatalf("tracked %d after fail-open, want 2", got)
	}

	// Once a and b have fully refilled, the sweep reclaims their slots and c
	// gets tracked like anyone else.
	clk.Advance(10 * time.Second)
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("post-sweep admission denied")
	}
	if got := l.tracked(); got != 1 {
		t.Fatalf("tracked %d after sweep, want 1 (just c)", got)
	}
}

func TestClientKey(t *testing.T) {
	tests := []struct{ addr, want string }{
		{"192.0.2.1:1234", "192.0.2.1"},
		{"[::1]:8080", "[::1]"},
		{"bare-host", "bare-host"},
	}
	for _, tc := range tests {
		r := httptest.NewRequest("GET", "/", nil)
		r.RemoteAddr = tc.addr
		if got := clientKey(r); got != tc.want {
			t.Errorf("clientKey(%q) = %q, want %q", tc.addr, got, tc.want)
		}
	}
}

// TestRateLimitHTTP drives the limiter through the full request path: 429
// with Retry-After once the bucket drains, recovery as the clock advances,
// exemption for health and metrics, and shed counters matching observed
// responses.
func TestRateLimitHTTP(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	srv := newTestServer(t, st, Config{RateLimit: 1, RateBurst: 2, Now: clk.Now})

	// The burst admits two; the third is shed.
	for i := 0; i < 2; i++ {
		if rec := get(t, srv, "/v1/outcomes", nil); rec.Code != 200 {
			t.Fatalf("burst request %d: status %d", i, rec.Code)
		}
	}
	rec := get(t, srv, "/v1/outcomes", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "rate limit") {
		t.Errorf("429 body %q does not explain itself", rec.Body.String())
	}

	// Health and metrics stay reachable while the client is being shed.
	if rec := get(t, srv, "/v1/health", nil); rec.Code != 200 {
		t.Errorf("health shed during rate limiting: status %d", rec.Code)
	}
	if rec := get(t, srv, "/metrics", nil); rec.Code != 200 {
		t.Errorf("metrics shed during rate limiting: status %d", rec.Code)
	}

	// One second later a token has accrued.
	clk.Advance(time.Second)
	if rec := get(t, srv, "/v1/outcomes", nil); rec.Code != 200 {
		t.Fatalf("post-refill status %d", rec.Code)
	}

	// A different client address has its own bucket.
	req := httptest.NewRequest("GET", "/v1/outcomes", nil)
	req.RemoteAddr = "198.51.100.7:4242"
	other := httptest.NewRecorder()
	srv.ServeHTTP(other, req)
	if other.Code != 200 {
		t.Fatalf("second client status %d", other.Code)
	}

	if got := srv.prom.shedRateLimit.Load(); got != 1 {
		t.Errorf("shedRateLimit %d, want 1", got)
	}
	if got := srv.prom.admitted.Load(); got != 4 {
		t.Errorf("admitted %d, want 4", got)
	}
}

// TestMaxInFlightBound proves the concurrency bound is exact: with
// MaxInFlight=2, two requests parked inside a handler hold the server at
// capacity, the third is shed immediately with 503 + Retry-After, and after
// the parked requests finish the server admits again.
func TestMaxInFlightBound(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{MaxInFlight: 2, RetryAfter: 3 * time.Second})

	entered := make(chan struct{}, 4)
	unblock := make(chan struct{})
	srv.routeFast("GET /v1/block", "outcomes", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-unblock
		w.WriteHeader(200)
	})

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, srv, "/v1/block", nil)
			codes[i] = rec.Code
		}(i)
	}
	// Both are inside the handler: the server is exactly at capacity.
	<-entered
	<-entered

	rec := get(t, srv, "/v1/block", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After %q, want \"3\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "concurrency") {
		t.Errorf("503 body %q does not explain itself", rec.Body.String())
	}

	close(unblock)
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Errorf("parked request %d: status %d, want 200", i, c)
		}
	}
	// Capacity is back.
	if rec := get(t, srv, "/v1/outcomes", nil); rec.Code != 200 {
		t.Errorf("post-drain status %d, want 200", rec.Code)
	}
	if got := srv.prom.shedInFlight.Load(); got != 1 {
		t.Errorf("shedInFlight %d, want 1", got)
	}
	if got := srv.prom.admitted.Load(); got != 3 {
		t.Errorf("admitted %d, want 3", got)
	}
	if got := srv.inFlight.Load(); got != 0 {
		t.Errorf("inFlight %d after drain, want 0", got)
	}
}

// TestSaturation hammers a MaxInFlight-bounded server far beyond capacity
// from many goroutines (run under -race in CI). Invariants: every response
// is a clean 200 or an immediate 503 with Retry-After, the in-flight gauge
// never exceeds the bound, and admitted + shed exactly accounts for every
// request.
func TestSaturation(t *testing.T) {
	const (
		maxInFlight = 2
		workers     = 16
		perWorker   = 50
	)
	st := testStore(t)
	srv := newTestServer(t, st, Config{MaxInFlight: maxInFlight})

	var (
		ok200, shed503, other atomic.Int64
		overBound             atomic.Int64
		stop                  atomic.Bool
	)
	// An observer polls the in-flight gauge the whole time; any reading
	// above the bound is a broken invariant.
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for !stop.Load() {
			if n := srv.inFlight.Load(); n > maxInFlight {
				overBound.Add(1)
			}
		}
	}()

	paths := []string{"/v1/outcomes", "/v1/mtti", "/v1/categories", "/v1/runs", "/v1/scaling?class=xe"}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest("GET", paths[(g+i)%len(paths)], nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				switch rec.Code {
				case 200:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					shed503.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						other.Add(1) // a shed without a hint counts as broken
					}
				default:
					other.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	obsWG.Wait()

	total := int64(workers * perWorker)
	if ok200.Load()+shed503.Load() != total || other.Load() != 0 {
		t.Fatalf("responses: %d ok, %d shed, %d other, want %d total with 0 other",
			ok200.Load(), shed503.Load(), other.Load(), total)
	}
	if ok200.Load() == 0 {
		t.Fatal("saturation starved every request; admitted none")
	}
	if overBound.Load() != 0 {
		t.Fatalf("in-flight gauge observed above bound %d times", overBound.Load())
	}
	if got := srv.prom.admitted.Load(); got != uint64(ok200.Load()) {
		t.Errorf("admitted counter %d, want %d", got, ok200.Load())
	}
	if got := srv.prom.shedInFlight.Load(); got != uint64(shed503.Load()) {
		t.Errorf("shedInFlight counter %d, want %d", got, shed503.Load())
	}
	if got := srv.inFlight.Load(); got != 0 {
		t.Errorf("inFlight %d after run, want 0", got)
	}
}

// TestGracefulDrain proves an admitted in-flight request completes during
// shutdown: the listener stops accepting, but the parked request drains to a
// clean 200 before Serve returns.
func TestGracefulDrain(t *testing.T) {
	st := testStore(t)
	srv := newTestServer(t, st, Config{MaxInFlight: 4})

	entered := make(chan struct{})
	unblock := make(chan struct{})
	srv.routeFast("GET /v1/block", "outcomes", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-unblock
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"drained":true}`)
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l, 10*time.Second) }()

	type result struct {
		code int
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + l.Addr().String() + "/v1/block")
		if err != nil {
			resc <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resc <- result{code: resp.StatusCode, body: string(body)}
	}()

	<-entered // the request is in flight
	cancel()  // shutdown begins; it must wait for the parked request
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-serveErr:
		t.Fatalf("Serve returned before the in-flight request drained: %v", err)
	default:
	}
	close(unblock)

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.code != 200 || !strings.Contains(res.body, "drained") {
		t.Fatalf("drained request: status %d body %q", res.code, res.body)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestAdmissionMetricsExposition cross-checks the Prometheus counters a
// scrape reports against the responses the client actually observed.
func TestAdmissionMetricsExposition(t *testing.T) {
	clk := newFakeClock()
	st := testStore(t)
	srv := newTestServer(t, st, Config{RateLimit: 2, RateBurst: 3, Now: clk.Now})

	var got200, got429, got304 int
	etag := ""
	for i := 0; i < 6; i++ {
		hdr := map[string]string(nil)
		if etag != "" {
			hdr = map[string]string{"If-None-Match": etag}
		}
		rec := get(t, srv, "/v1/outcomes", hdr)
		switch rec.Code {
		case 200:
			got200++
			etag = rec.Header().Get("ETag")
		case 304:
			got304++
		case 429:
			got429++
		default:
			t.Fatalf("request %d: unexpected status %d", i, rec.Code)
		}
	}
	if got429 == 0 {
		t.Fatal("test generated no rate-limit sheds; counters unexercised")
	}

	rec := get(t, srv, "/metrics", nil)
	text := rec.Body.String()
	counter := func(name string) int {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
		m := re.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("metrics missing %q:\n%s", name, text)
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}
	if got := counter("logdiver_http_admitted_total"); got != got200+got304 {
		t.Errorf("admitted_total %d, want %d (200s+304s)", got, got200+got304)
	}
	if got := counter(`logdiver_http_shed_total{reason="rate_limit"}`); got != got429 {
		t.Errorf("shed_total{rate_limit} %d, want %d", got, got429)
	}
	if got := counter(`logdiver_http_shed_total{reason="inflight"}`); got != 0 {
		t.Errorf("shed_total{inflight} %d, want 0", got)
	}
	if got := counter("logdiver_http_not_modified_total"); got != got304 {
		t.Errorf("not_modified_total %d, want %d", got, got304)
	}
	if got := counter("logdiver_cache_served_total"); got != got200 {
		t.Errorf("cache_served_total %d, want %d (full responses)", got, got200)
	}
	if counter("logdiver_cache_renders_total") < 1 {
		t.Error("cache_renders_total zero despite cached serves")
	}
}
