package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"logdiver/internal/store"
)

// Response caching. Snapshots are immutable and epoch-versioned, so every
// cacheable view is a pure function of the snapshot pointer: render it once
// per epoch into pre-encoded bytes (identity and gzip), then serve those
// bytes to every request until the epoch advances. The cache is keyed by
// snapshot POINTER, not epoch number: a handler that loaded snapshot S can
// only ever be handed bytes rendered from S, so a concurrent epoch swap can
// never serve stale or mixed-epoch responses.

// viewID enumerates the cacheable views. Each is rendered at most once per
// epoch.
type viewID int

const (
	viewOutcomes viewID = iota
	viewScalingXE
	viewScalingXK
	viewMTTI
	viewCategories
	// viewRunsFirst is the default page of /v1/runs (no cursor, default
	// limit) — the page every fresh traversal starts from. Other pages are
	// rendered per request; they are bounded and comparatively rare.
	viewRunsFirst
	// The merged /v1/fleet/* views. In fleet mode the store's snapshots ARE
	// merged fleet snapshots, so these cache alongside the plain views under
	// the same epoch-vector-bearing snapshot pointer.
	viewFleetOutcomes
	viewFleetScalingXE
	viewFleetScalingXK
	viewFleetMTTI
	viewFleetCategories
	numViews
)

// cacheControl is sent on every snapshot-derived response: any cache may
// store it, but must revalidate with If-None-Match before reuse. Within an
// epoch the revalidation is a 304 with no body; across epochs it refreshes.
const cacheControl = "public, no-cache"

// cachedView is one view's rendered representations. The contentLength
// strings are precomputed so the steady-state serve path allocates nothing.
type cachedView struct {
	once    sync.Once
	body    []byte // identity representation
	gz      []byte // gzip representation of body
	bodyLen string
	gzLen   string
}

// viewCaches holds every cacheable view rendered from exactly one snapshot.
type viewCaches struct {
	snap  *store.Snapshot
	etag  string
	views [numViews]cachedView
	// whatif caches POST /v1/whatif reports, which are keyed by request
	// material rather than a fixed view ID; see whatif.go.
	whatif whatifCache
}

func newViewCaches(snap *store.Snapshot) *viewCaches {
	return &viewCaches{
		snap: snap,
		etag: `"` + strconv.FormatUint(snap.Epoch, 10) + `"`,
	}
}

// view returns the representations of v, rendering and compressing them on
// first use. renders counts first-time renders for /metrics.
func (c *viewCaches) view(v viewID, render func(*store.Snapshot) []byte, renders *atomic.Uint64) *cachedView {
	cv := &c.views[v]
	cv.once.Do(func() {
		cv.body = render(c.snap)
		cv.gz = gzipBytes(cv.body)
		cv.bodyLen = strconv.Itoa(len(cv.body))
		cv.gzLen = strconv.Itoa(len(cv.gz))
		renders.Add(1)
	})
	return cv
}

// gzipBytes compresses b at BestSpeed. The output is deterministic for a
// given input (no timestamp is written), which the cached-versus-uncached
// differential tests rely on.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	_, _ = zw.Write(b)
	_ = zw.Close()
	return buf.Bytes()
}

// cacheFor returns the view cache bound to snap, creating it on an epoch
// advance. Publication is best-effort monotonic: a lost race leaves some
// requests rendering from a private cache, never serving wrong bytes.
func (s *Server) cacheFor(snap *store.Snapshot) *viewCaches {
	if c := s.cache.Load(); c != nil && c.snap == snap {
		return c
	}
	c := newViewCaches(snap)
	for {
		cur := s.cache.Load()
		if cur != nil && cur.snap.Epoch >= snap.Epoch {
			// A newer (or concurrent same-epoch) cache is already
			// published; serve this request from the private cache bound
			// to OUR snapshot.
			if cur.snap == snap {
				return cur
			}
			return c
		}
		if s.cache.CompareAndSwap(cur, c) {
			return c
		}
	}
}

// encodeJSON renders v exactly as writeJSON does: two-space indent and a
// trailing newline. Cached bytes and direct responses share this encoding,
// which is what makes them byte-identical.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

// etagMatch reports whether the If-None-Match header value matches etag,
// per RFC 7232 weak comparison: a wildcard or any listed entity-tag whose
// opaque part equals ours. The single-tag fast path avoids parsing.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == etag || header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request allows a gzip response. Tokens
// are matched properly so "gzip;q=0" refuses and "*" accepts.
func acceptsGzip(r *http.Request) bool {
	ae := r.Header.Get("Accept-Encoding")
	if ae == "" {
		return false
	}
	for _, part := range strings.Split(ae, ",") {
		part = strings.TrimSpace(part)
		name, params, _ := strings.Cut(part, ";")
		name = strings.TrimSpace(name)
		if name != "gzip" && name != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if q, ok := strings.CutPrefix(q, "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// etagFor is the entity tag of every response derived from snap. With
// caching on it comes precomputed from the snapshot's view cache.
func (s *Server) etagFor(snap *store.Snapshot) string {
	if s.cfg.DisableCache {
		return `"` + strconv.FormatUint(snap.Epoch, 10) + `"`
	}
	return s.cacheFor(snap).etag
}

// serveView answers one cacheable endpoint from the handler's snapshot:
// conditional 304 first, then pre-encoded cached bytes (with negotiated
// gzip), or a direct render when caching is disabled. Cached and direct
// bodies are byte-identical by construction.
func (s *Server) serveView(w http.ResponseWriter, r *http.Request, snap *store.Snapshot, view viewID, render func(*store.Snapshot) []byte) {
	h := w.Header()
	var etag string
	var c *viewCaches
	if s.cfg.DisableCache {
		etag = `"` + strconv.FormatUint(snap.Epoch, 10) + `"`
	} else {
		c = s.cacheFor(snap)
		etag = c.etag
	}
	h.Set("ETag", etag)
	h.Set("Cache-Control", cacheControl)
	h.Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.prom.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	if c == nil {
		body := render(snap)
		if acceptsGzip(r) {
			gz := gzipBytes(body)
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(len(gz)))
			_, _ = w.Write(gz)
			return
		}
		h.Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body)
		return
	}
	cv := c.view(view, render, &s.prom.cacheRenders)
	s.prom.cacheServed.Add(1)
	if acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		h.Set("Content-Length", cv.gzLen)
		_, _ = w.Write(cv.gz)
		return
	}
	h.Set("Content-Length", cv.bodyLen)
	_, _ = w.Write(cv.body)
}
