// Package stats provides the statistical machinery used by the resilience
// analysis: empirical distributions and quantiles, binomial proportion
// confidence intervals (Wilson score), maximum-likelihood fits for the
// exponential, Weibull and lognormal families commonly used for
// time-between-failures data, the Kaplan-Meier estimator for right-censored
// interrupt times, and bootstrap confidence intervals.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the usual moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample. The input is not modified.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := 0.0
	if len(sorted) > 1 {
		variance = (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0 // numerical noise
		}
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Proportion is a binomial proportion with a confidence interval.
type Proportion struct {
	Successes int
	Trials    int
	// P is the point estimate Successes/Trials.
	P float64
	// Lo and Hi bound the Wilson score interval.
	Lo, Hi float64
}

// Wilson computes the Wilson score interval for a binomial proportion at
// confidence level given by z (1.96 for 95%). It is well behaved for small
// counts and proportions near 0 or 1, which is exactly the regime of
// application failure probabilities.
func Wilson(successes, trials int, z float64) (Proportion, error) {
	if trials <= 0 {
		return Proportion{}, fmt.Errorf("stats: wilson interval needs trials > 0, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return Proportion{}, fmt.Errorf("stats: successes %d outside [0,%d]", successes, trials)
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Proportion{Successes: successes, Trials: trials, P: p, Lo: lo, Hi: hi}, nil
}

// Histogram is a fixed-width binned count of a sample.
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
	// Underflow and Overflow count samples outside [Min, Max).
	Underflow, Overflow int
}

// NewHistogram bins xs into n equal-width bins spanning [min, max).
func NewHistogram(xs []float64, min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs n > 0, got %d", n)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", min, max)
	}
	h := &Histogram{Min: min, Max: max, Width: (max - min) / float64(n), Counts: make([]int, n)}
	for _, x := range xs {
		switch {
		case x < min:
			h.Underflow++
		case x >= max:
			h.Overflow++
		default:
			i := int((x - min) / h.Width)
			if i >= n { // guard against rounding at the upper edge
				i = n - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance past ties so that At is right-continuous.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns up to n evenly spaced (x, F(x)) pairs for plotting.
func (e *ECDF) Points(n int) [][2]float64 {
	if n <= 0 || len(e.sorted) == 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		x := e.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(e.sorted))})
	}
	return out
}

// ExpFit is a fitted exponential distribution.
type ExpFit struct {
	// Rate is the MLE lambda = 1/mean.
	Rate float64
	// MTBF is the mean, in the sample's unit.
	MTBF float64
}

// FitExponential fits an exponential distribution by maximum likelihood.
// All samples must be positive.
func FitExponential(xs []float64) (ExpFit, error) {
	if len(xs) == 0 {
		return ExpFit{}, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return ExpFit{}, fmt.Errorf("stats: exponential fit needs positive samples, got %v", x)
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	return ExpFit{Rate: 1 / mean, MTBF: mean}, nil
}

// WeibullFit is a fitted Weibull distribution with shape k and scale lambda.
// Shape < 1 indicates a decreasing hazard (infant mortality); shape > 1 an
// increasing hazard (wear-out); shape == 1 reduces to the exponential.
type WeibullFit struct {
	Shape float64
	Scale float64
}

// FitWeibull fits a two-parameter Weibull by maximum likelihood using
// Newton iteration on the profile likelihood for the shape parameter.
// All samples must be positive.
func FitWeibull(xs []float64) (WeibullFit, error) {
	if len(xs) < 2 {
		return WeibullFit{}, fmt.Errorf("stats: weibull fit needs >= 2 samples, got %d", len(xs))
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return WeibullFit{}, fmt.Errorf("stats: weibull fit needs positive samples, got %v", x)
		}
		logs[i] = math.Log(x)
	}
	meanLog := Mean(logs)

	// Solve g(k) = sum(x^k log x)/sum(x^k) - 1/k - meanLog = 0.
	k := 1.0
	for iter := 0; iter < 100; iter++ {
		var sxk, sxklx, sxklx2 float64
		for i, x := range xs {
			xk := math.Pow(x, k)
			sxk += xk
			sxklx += xk * logs[i]
			sxklx2 += xk * logs[i] * logs[i]
		}
		g := sxklx/sxk - 1/k - meanLog
		// g'(k) = [sxklx2*sxk - sxklx^2]/sxk^2 + 1/k^2
		gp := (sxklx2*sxk-sxklx*sxklx)/(sxk*sxk) + 1/(k*k)
		step := g / gp
		k -= step
		if k <= 1e-6 {
			k = 1e-6
		}
		if math.Abs(step) < 1e-10 {
			break
		}
	}
	if math.IsNaN(k) || math.IsInf(k, 0) {
		return WeibullFit{}, errors.New("stats: weibull shape estimate diverged")
	}
	var sxk float64
	for _, x := range xs {
		sxk += math.Pow(x, k)
	}
	scale := math.Pow(sxk/float64(len(xs)), 1/k)
	return WeibullFit{Shape: k, Scale: scale}, nil
}

// Mean returns the mean of the fitted Weibull.
func (w WeibullFit) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// LognormalFit is a fitted lognormal distribution with parameters Mu and
// Sigma of the underlying normal.
type LognormalFit struct {
	Mu    float64
	Sigma float64
}

// FitLognormal fits a lognormal distribution by maximum likelihood.
func FitLognormal(xs []float64) (LognormalFit, error) {
	if len(xs) < 2 {
		return LognormalFit{}, fmt.Errorf("stats: lognormal fit needs >= 2 samples, got %d", len(xs))
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LognormalFit{}, fmt.Errorf("stats: lognormal fit needs positive samples, got %v", x)
		}
		logs[i] = math.Log(x)
	}
	mu := Mean(logs)
	var ss float64
	for _, l := range logs {
		d := l - mu
		ss += d * d
	}
	return LognormalFit{Mu: mu, Sigma: math.Sqrt(ss / float64(len(logs)))}, nil
}

// Mean returns the mean of the fitted lognormal.
func (l LognormalFit) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Median returns the median of the fitted lognormal.
func (l LognormalFit) Median() float64 { return math.Exp(l.Mu) }

// KMPoint is one step of a Kaplan-Meier survival curve.
type KMPoint struct {
	Time     float64
	Survival float64
	AtRisk   int
	Events   int
}

// KaplanMeier estimates the survival function from possibly right-censored
// observations. times[i] is the observation time and events[i] reports
// whether the event (failure) occurred (true) or the observation was
// censored (false, e.g. the run completed without interruption).
func KaplanMeier(times []float64, events []bool) ([]KMPoint, error) {
	if len(times) == 0 {
		return nil, ErrEmpty
	}
	if len(times) != len(events) {
		return nil, fmt.Errorf("stats: kaplan-meier got %d times and %d event flags", len(times), len(events))
	}
	type obs struct {
		t float64
		e bool
	}
	all := make([]obs, len(times))
	for i := range times {
		if times[i] < 0 {
			return nil, fmt.Errorf("stats: kaplan-meier time %v < 0", times[i])
		}
		all[i] = obs{times[i], events[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })

	var out []KMPoint
	surv := 1.0
	atRisk := len(all)
	i := 0
	for i < len(all) {
		t := all[i].t
		var d, c int
		for i < len(all) && all[i].t == t {
			if all[i].e {
				d++
			} else {
				c++
			}
			i++
		}
		if d > 0 {
			surv *= 1 - float64(d)/float64(atRisk)
			out = append(out, KMPoint{Time: t, Survival: surv, AtRisk: atRisk, Events: d})
		}
		atRisk -= d + c
	}
	return out, nil
}

// BootstrapCI computes a percentile bootstrap confidence interval for the
// statistic f over sample xs using b resamples. The alpha parameter is the
// two-sided error (0.05 for a 95% interval). The rng must not be nil.
func BootstrapCI(xs []float64, f func([]float64) float64, b int, alpha float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if b <= 1 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs b > 1, got %d", b)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, fmt.Errorf("stats: bootstrap alpha %v outside (0,1)", alpha)
	}
	if rng == nil {
		return 0, 0, errors.New("stats: bootstrap needs a non-nil rng")
	}
	est := make([]float64, b)
	resample := make([]float64, len(xs))
	for i := 0; i < b; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		est[i] = f(resample)
	}
	sort.Float64s(est)
	return quantileSorted(est, alpha/2), quantileSorted(est, 1-alpha/2), nil
}

// RateCI computes a two-sided confidence interval for a Poisson rate given
// an event count over an exposure, using the normal approximation with a
// floor of zero. For counts above ~30 the approximation error is negligible
// relative to the field-data noise this package deals with.
func RateCI(events int, exposure float64, z float64) (rate, lo, hi float64, err error) {
	if exposure <= 0 {
		return 0, 0, 0, fmt.Errorf("stats: rate CI needs exposure > 0, got %v", exposure)
	}
	if events < 0 {
		return 0, 0, 0, fmt.Errorf("stats: rate CI needs events >= 0, got %d", events)
	}
	rate = float64(events) / exposure
	half := z * math.Sqrt(float64(events)) / exposure
	lo = rate - half
	if lo < 0 {
		lo = 0
	}
	return rate, lo, rate + half, nil
}
