package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	return xs
}

func BenchmarkSummarize(b *testing.B) {
	xs := benchSample(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWilson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Wilson(i%1000, 1000, 1.96); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitWeibull(b *testing.B) {
	xs := benchSample(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitWeibull(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitExponential(b *testing.B) {
	xs := benchSample(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitExponential(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKaplanMeier(b *testing.B) {
	xs := benchSample(5000)
	events := make([]bool, len(xs))
	for i := range events {
		events[i] = i%3 != 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KaplanMeier(xs, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	xs := benchSample(5000)
	cdf := ExpCDF(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KSStatistic(xs, cdf); err != nil {
			b.Fatal(err)
		}
	}
}
