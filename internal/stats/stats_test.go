package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("unexpected summary %+v", s)
	}
	if !almostEqual(s.StdDev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("StdDev = %v, want sqrt(2.5)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.Median != 7 || s.P99 != 7 {
		t.Errorf("unexpected single-sample summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},
		{0.25, 17.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) succeeded")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) succeeded")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile(nil) should return ErrEmpty")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := Quantile(raw, qa)
		vb, err2 := Quantile(raw, qb)
		return err1 == nil && err2 == nil && va <= vb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWilson(t *testing.T) {
	p, err := Wilson(10, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 0.1 {
		t.Errorf("P = %v, want 0.1", p.P)
	}
	if !(p.Lo < p.P && p.P < p.Hi) {
		t.Errorf("interval [%v,%v] does not bracket %v", p.Lo, p.Hi, p.P)
	}
	// Known value: Wilson 95% for 10/100 is about [0.0552, 0.1744].
	if !almostEqual(p.Lo, 0.0552, 0.002) || !almostEqual(p.Hi, 0.1744, 0.002) {
		t.Errorf("interval [%v,%v], want about [0.0552,0.1744]", p.Lo, p.Hi)
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	zero, err := Wilson(0, 50, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Lo != 0 || zero.P != 0 || zero.Hi <= 0 {
		t.Errorf("Wilson(0,50) = %+v", zero)
	}
	full, err := Wilson(50, 50, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hi != 1 || full.P != 1 || full.Lo >= 1 {
		t.Errorf("Wilson(50,50) = %+v", full)
	}
	if _, err := Wilson(1, 0, 1.96); err == nil {
		t.Error("Wilson with 0 trials succeeded")
	}
	if _, err := Wilson(-1, 10, 1.96); err == nil {
		t.Error("Wilson with negative successes succeeded")
	}
	if _, err := Wilson(11, 10, 1.96); err == nil {
		t.Error("Wilson with successes > trials succeeded")
	}
}

func TestWilsonBracketsProperty(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%1000) + 1
		succ := int(s) % (trials + 1)
		p, err := Wilson(succ, trials, 1.96)
		if err != nil {
			return false
		}
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.P+1e-12 && p.P <= p.Hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{-1, 0, 0.5, 1, 2.5, 9.99, 10, 42}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[9] != 1 { // 9.99
		t.Errorf("Counts[9] = %d, want 1", h.Counts[9])
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 10, 0); err == nil {
		t.Error("n=0 succeeded")
	}
	if _, err := NewHistogram(nil, 10, 10, 4); err == nil {
		t.Error("empty range succeeded")
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	// Values extremely close to the upper edge must not index out of range.
	h, err := NewHistogram([]float64{math.Nextafter(10, 0)}, 0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Errorf("Total = %d, want 1", h.Total())
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	pts := e.Points(3)
	if len(pts) != 3 {
		t.Fatalf("Points(3) returned %d points", len(pts))
	}
	if pts[0][0] != 1 || pts[2][0] != 3 {
		t.Errorf("Points endpoints = %v", pts)
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Error("NewECDF(nil) should return ErrEmpty")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -40.0; x <= 40; x += 0.5 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF decreased at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const lambda = 0.25
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / lambda
	}
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Rate, lambda, 0.01) {
		t.Errorf("Rate = %v, want about %v", fit.Rate, lambda)
	}
	if !almostEqual(fit.MTBF, 1/lambda, 0.2) {
		t.Errorf("MTBF = %v, want about %v", fit.MTBF, 1/lambda)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err != ErrEmpty {
		t.Error("empty sample should return ErrEmpty")
	}
	if _, err := FitExponential([]float64{1, -2}); err == nil {
		t.Error("negative sample succeeded")
	}
}

func sampleWeibull(rng *rand.Rand, shape, scale float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		u := rng.Float64()
		xs[i] = scale * math.Pow(-math.Log(1-u), 1/shape)
	}
	return xs
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	tests := []struct{ shape, scale float64 }{
		{0.7, 100}, // infant mortality regime
		{1.0, 50},
		{1.8, 200}, // wear-out regime
	}
	rng := rand.New(rand.NewSource(11))
	for _, tt := range tests {
		xs := sampleWeibull(rng, tt.shape, tt.scale, 30000)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("FitWeibull(shape=%v): %v", tt.shape, err)
		}
		if math.Abs(fit.Shape-tt.shape)/tt.shape > 0.05 {
			t.Errorf("shape = %v, want about %v", fit.Shape, tt.shape)
		}
		if math.Abs(fit.Scale-tt.scale)/tt.scale > 0.05 {
			t.Errorf("scale = %v, want about %v", fit.Scale, tt.scale)
		}
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1}); err == nil {
		t.Error("single sample succeeded")
	}
	if _, err := FitWeibull([]float64{1, 0}); err == nil {
		t.Error("zero sample succeeded")
	}
}

func TestWeibullMeanExponentialCase(t *testing.T) {
	w := WeibullFit{Shape: 1, Scale: 42}
	if !almostEqual(w.Mean(), 42, 1e-9) {
		t.Errorf("Mean = %v, want 42", w.Mean())
	}
}

func TestFitLognormalRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const mu, sigma = 2.0, 0.8
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	fit, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Mu, mu, 0.03) || !almostEqual(fit.Sigma, sigma, 0.03) {
		t.Errorf("fit = %+v, want mu=%v sigma=%v", fit, mu, sigma)
	}
	if !almostEqual(fit.Median(), math.Exp(mu), 0.5) {
		t.Errorf("Median = %v, want about %v", fit.Median(), math.Exp(mu))
	}
	wantMean := math.Exp(mu + sigma*sigma/2)
	if math.Abs(fit.Mean()-wantMean)/wantMean > 0.05 {
		t.Errorf("Mean = %v, want about %v", fit.Mean(), wantMean)
	}
}

func TestFitLognormalErrors(t *testing.T) {
	if _, err := FitLognormal([]float64{1}); err == nil {
		t.Error("single sample succeeded")
	}
	if _, err := FitLognormal([]float64{1, -1}); err == nil {
		t.Error("negative sample succeeded")
	}
}

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, KM equals the empirical survival function.
	times := []float64{1, 2, 3, 4}
	events := []bool{true, true, true, true}
	km, err := KaplanMeier(times, events)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.75, 0.5, 0.25, 0}
	if len(km) != 4 {
		t.Fatalf("got %d points, want 4", len(km))
	}
	for i, p := range km {
		if !almostEqual(p.Survival, want[i], 1e-12) {
			t.Errorf("S(%v) = %v, want %v", p.Time, p.Survival, want[i])
		}
	}
}

func TestKaplanMeierWithCensoring(t *testing.T) {
	// Classic worked example: events at 1 and 3; censored at 2 and 4.
	times := []float64{1, 2, 3, 4}
	events := []bool{true, false, true, false}
	km, err := KaplanMeier(times, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(km) != 2 {
		t.Fatalf("got %d event points, want 2", len(km))
	}
	if !almostEqual(km[0].Survival, 0.75, 1e-12) {
		t.Errorf("S(1) = %v, want 0.75", km[0].Survival)
	}
	// After censoring at t=2, 2 remain at risk at t=3: S = 0.75 * (1-1/2).
	if !almostEqual(km[1].Survival, 0.375, 1e-12) {
		t.Errorf("S(3) = %v, want 0.375", km[1].Survival)
	}
}

func TestKaplanMeierTiedTimes(t *testing.T) {
	times := []float64{5, 5, 5, 5}
	events := []bool{true, true, false, false}
	km, err := KaplanMeier(times, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(km) != 1 || !almostEqual(km[0].Survival, 0.5, 1e-12) {
		t.Errorf("km = %+v, want single point with S=0.5", km)
	}
	if km[0].AtRisk != 4 || km[0].Events != 2 {
		t.Errorf("km[0] = %+v", km[0])
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := KaplanMeier(nil, nil); err != ErrEmpty {
		t.Error("empty input should return ErrEmpty")
	}
	if _, err := KaplanMeier([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch succeeded")
	}
	if _, err := KaplanMeier([]float64{-1}, []bool{true}); err == nil {
		t.Error("negative time succeeded")
	}
}

func TestKaplanMeierMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 2
		times := make([]float64, count)
		events := make([]bool, count)
		for i := range times {
			times[i] = rng.Float64() * 100
			events[i] = rng.Intn(2) == 0
		}
		km, err := KaplanMeier(times, events)
		if err != nil {
			return false
		}
		prev := 1.0
		for _, p := range km {
			if p.Survival > prev+1e-12 || p.Survival < 0 {
				return false
			}
			prev = p.Survival
		}
		return sort.SliceIsSorted(km, func(i, j int) bool { return km[i].Time < km[j].Time })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(xs, Mean, 500, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 5 && 5 < hi) {
		t.Errorf("bootstrap CI [%v,%v] does not bracket 5", lo, hi)
	}
	if hi-lo > 0.3 {
		t.Errorf("bootstrap CI [%v,%v] implausibly wide", lo, hi)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := BootstrapCI(nil, Mean, 100, 0.05, rng); err != ErrEmpty {
		t.Error("empty sample should return ErrEmpty")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 1, 0.05, rng); err == nil {
		t.Error("b=1 succeeded")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 100, 0, rng); err == nil {
		t.Error("alpha=0 succeeded")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 100, 0.05, nil); err == nil {
		t.Error("nil rng succeeded")
	}
}

func TestRateCI(t *testing.T) {
	rate, lo, hi, err := RateCI(100, 1000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0.1 {
		t.Errorf("rate = %v, want 0.1", rate)
	}
	if !(lo < rate && rate < hi) {
		t.Errorf("interval [%v,%v] does not bracket %v", lo, hi, rate)
	}
	if _, lo, _, err := RateCI(0, 10, 1.96); err != nil || lo != 0 {
		t.Errorf("RateCI(0,10) = lo %v err %v, want 0,nil", lo, err)
	}
	if _, _, _, err := RateCI(1, 0, 1.96); err == nil {
		t.Error("zero exposure succeeded")
	}
	if _, _, _, err := RateCI(-1, 10, 1.96); err == nil {
		t.Error("negative events succeeded")
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}
