package stats

import (
	"math"
	"sort"
)

// KSStatistic computes the one-sample Kolmogorov-Smirnov statistic
// D = sup_x |F_n(x) - F(x)| between the empirical distribution of xs and
// the hypothesized CDF. The input is not modified.
func KSStatistic(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		fx := cdf(x)
		// Compare against the ECDF just below and just above the step.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(fx - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(fx - hi); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCritical returns the approximate critical value of the KS statistic at
// significance alpha for sample size n (valid for n >= ~35; conservative
// below). Supported alphas: 0.10, 0.05, 0.01; others fall back to 0.05.
func KSCritical(n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.628
	case alpha <= 0.05:
		c = 1.358
	default:
		c = 1.224
	}
	return c / math.Sqrt(float64(n))
}

// ExpCDF returns the CDF of an exponential distribution with the given
// rate.
func ExpCDF(rate float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	}
}

// WeibullCDF returns the CDF of a Weibull distribution with the given
// shape and scale.
func WeibullCDF(shape, scale float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-math.Pow(x/scale, shape))
	}
}

// LognormalCDF returns the CDF of a lognormal distribution with the given
// mu and sigma.
func LognormalCDF(mu, sigma float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 0.5 * math.Erfc(-(math.Log(x)-mu)/(sigma*math.Sqrt2))
	}
}
