package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSStatisticEmptyInput(t *testing.T) {
	if _, err := KSStatistic(nil, ExpCDF(1)); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestKSAcceptsTrueDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 0.5 // exponential with rate 0.5
	}
	d, err := KSStatistic(xs, ExpCDF(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCritical(n, 0.05); d > crit {
		t.Errorf("true distribution rejected: D=%v > crit=%v", d, crit)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 0.5
	}
	d, err := KSStatistic(xs, ExpCDF(2.0)) // 4x wrong rate
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCritical(n, 0.05); d <= crit {
		t.Errorf("wrong distribution accepted: D=%v <= crit=%v", d, crit)
	}
}

func TestKSDistinguishesWeibullFromExponential(t *testing.T) {
	// Bursty (shape 0.5) Weibull data: the fitted Weibull must beat the
	// fitted exponential on the KS statistic.
	rng := rand.New(rand.NewSource(23))
	const n = 4000
	xs := sampleWeibull(rng, 0.5, 10, n)

	expFit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	wbFit, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	dExp, err := KSStatistic(xs, ExpCDF(expFit.Rate))
	if err != nil {
		t.Fatal(err)
	}
	dWb, err := KSStatistic(xs, WeibullCDF(wbFit.Shape, wbFit.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if dWb >= dExp {
		t.Errorf("weibull fit D=%v should beat exponential D=%v on bursty data", dWb, dExp)
	}
	if dWb > KSCritical(n, 0.01) {
		t.Errorf("fitted weibull rejected on its own data: D=%v", dWb)
	}
}

func TestKSCritical(t *testing.T) {
	if got := KSCritical(100, 0.05); math.Abs(got-0.1358) > 1e-4 {
		t.Errorf("KSCritical(100, 0.05) = %v, want ~0.1358", got)
	}
	if got := KSCritical(100, 0.01); got <= KSCritical(100, 0.05) {
		t.Error("stricter alpha should give larger critical value")
	}
	if got := KSCritical(100, 0.10); got >= KSCritical(100, 0.05) {
		t.Error("looser alpha should give smaller critical value")
	}
	if !math.IsInf(KSCritical(0, 0.05), 1) {
		t.Error("n=0 should give +Inf")
	}
}

func TestCDFHelpers(t *testing.T) {
	exp := ExpCDF(1)
	if exp(-1) != 0 || exp(0) != 0 {
		t.Error("ExpCDF not zero at/below origin")
	}
	if got := exp(math.Log(2)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ExpCDF(ln 2) = %v, want 0.5", got)
	}
	wb := WeibullCDF(1, 1) // reduces to Exp(1)
	for _, x := range []float64{0.1, 1, 3} {
		if math.Abs(wb(x)-exp(x)) > 1e-12 {
			t.Errorf("Weibull(1,1)(%v) = %v != Exp(1)(%v) = %v", x, wb(x), x, exp(x))
		}
	}
	ln := LognormalCDF(0, 1)
	if got := ln(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LognormalCDF(0,1)(1) = %v, want 0.5 (median at e^mu)", got)
	}
	if ln(0) != 0 || ln(-3) != 0 {
		t.Error("LognormalCDF not zero at/below origin")
	}
}

func TestKSStatisticBounds(t *testing.T) {
	// D is always in [0, 1].
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		d, err := KSStatistic(xs, ExpCDF(1))
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("D = %v outside [0,1]", d)
		}
	}
}
