module logdiver

go 1.22
