// Command experiments regenerates every table and figure of the study in
// one shot: it synthesizes a dataset (full Blue Waters topology), runs the
// analysis pipeline over it, evaluates experiments E1-E10 and ablations
// A1/A2, and writes both a human-readable report and a machine-readable
// markdown file suitable for EXPERIMENTS.md.
//
// Usage:
//
//	experiments -days 120 -seed 1 -md EXPERIMENTS.md
//
// The -days flag scales the synthesized production span; the paper's full
// span is 518 days (-days 518), which takes several minutes and a few GB of
// memory on the all-in-memory path.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days   = flag.Int("days", 120, "production days to synthesize (paper: 518)")
		seed   = flag.Int64("seed", 1, "random seed")
		mdPath = flag.String("md", "", "also write the report as markdown to this path")
		csvDir = flag.String("csvdir", "", "also write each table as <ID>.csv into this directory (figure series)")
	)
	flag.Parse()

	t0 := time.Now()
	cfg := logdiver.ScaledGeneratorConfig(*days)
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "synthesizing %d days of production (seed %d)...\n", *days, *seed)
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d jobs / %d runs / %d events in %v\n",
		len(ds.Jobs), len(ds.Runs), len(ds.Events), time.Since(t0).Round(time.Second))

	// Analyze through the raw-text path: serialize the archives exactly as
	// a real system would have logged them, then parse them back. This is
	// the honest reproduction of LogDiver's job (and is what makes the
	// dedup row of E10 meaningful: the forwarding chain duplicates lines).
	t1 := time.Now()
	var acc, aps, sys bytes.Buffer
	if err := ds.WriteAccounting(&acc); err != nil {
		return err
	}
	if err := ds.WriteApsys(&aps); err != nil {
		return err
	}
	if err := ds.WriteErrorLog(&sys); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serialized %d MB of raw logs in %v\n",
		(acc.Len()+aps.Len()+sys.Len())>>20, time.Since(t1).Round(time.Second))

	t2 := time.Now()
	res, err := logdiver.Analyze(logdiver.Archives{
		Accounting: &acc,
		Apsys:      &aps,
		Syslog:     &sys,
	}, ds.Topology, logdiver.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed and analyzed in %v (%d malformed lines skipped)\n",
		time.Since(t2).Round(time.Second), res.Parse.SyslogMalformed)

	tables, err := logdiver.Experiments(res, ds.Topology, ds.Truth)
	if err != nil {
		return err
	}

	out := bufio.NewWriter(os.Stdout)
	for _, tbl := range tables {
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if err := out.Flush(); err != nil {
		return err
	}

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# Experiment results\n\n")
		fmt.Fprintf(w, "Synthesized span: %d days, seed %d. Generated %d jobs, %d runs, %d events.\n\n",
			*days, *seed, len(ds.Jobs), len(ds.Runs), len(ds.Events))
		for _, tbl := range tables {
			if err := tbl.RenderMarkdown(w); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *mdPath)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for _, tbl := range tables {
			path := fmt.Sprintf("%s/%s.csv", *csvDir, tbl.ID)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tbl.RenderCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d csv files to %s\n", len(tables), *csvDir)
	}
	return nil
}
