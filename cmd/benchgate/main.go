// Command benchgate turns `go test -bench` output into a benchmark-
// regression gate for the parallel ingestion path.
//
// It parses the standard benchmark output format, records every benchmark
// (best-of-count ns/op, B/op, allocs/op, MB/s) into a JSON report, and
// compares a gated pair of benchmarks — by default BenchmarkAnalyze/serial
// (the baseline, the report's serial slot) against BenchmarkAnalyze/parallel
// (the contender, the parallel slot); -serial-name/-parallel-name repoint
// the pair, e.g. at BenchmarkRestore/cold vs /warm for the warm-restart
// gate. When the benchmarks ran at GOMAXPROCS >= the enforcement threshold
// (default 4), benchgate exits nonzero if the contender did not reach the
// required speedup over the baseline; below the threshold the comparison is
// recorded but not enforced, because a speedup cannot materialize without
// cores (single-core parallel ingestion degrades to the sequential path by
// design; pass -min-procs 1 for pairs whose speedup does not come from
// cores, like warm-vs-cold restart). With -speedup-gate=false the report is
// still written but the pair is neither required nor compared — for
// benchmark suites (like the serving benchmarks) that have no such pair.
//
// Usage:
//
//	go test -bench 'BenchmarkAnalyze|...' -benchtime=1x -count=3 -benchmem | tee bench.txt
//	benchgate -in bench.txt -out BENCH_ingest.json -min-speedup 1.0
//	benchgate -in bench.txt -out BENCH_restore.json -min-speedup 1.0 -min-procs 1 \
//	    -serial-name BenchmarkRestore/cold -parallel-name BenchmarkRestore/warm
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// run is one benchmark line: a name, an iteration count and metric pairs.
type run struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	MBPerSec    float64
}

// summary is the per-benchmark aggregate written to the report: the best
// (minimum) ns/op across -count repetitions, with the other metrics taken
// from that fastest run.
type summary struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// report is the BENCH_ingest.json schema.
type report struct {
	Procs      int       `json:"procs"`
	Enforced   bool      `json:"enforced"`
	MinSpeedup float64   `json:"min_speedup"`
	Speedup    float64   `json:"speedup,omitempty"`
	Serial     *summary  `json:"serial,omitempty"`
	Parallel   *summary  `json:"parallel,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		in          = flag.String("in", "-", "benchmark output file (- for stdin)")
		out         = flag.String("out", "BENCH_ingest.json", "JSON report path (- for stdout)")
		minSpeedup  = flag.Float64("min-speedup", 1.0, "required parallel-over-serial speedup when enforcing")
		minProcs    = flag.Int("min-procs", 4, "enforce the speedup only at GOMAXPROCS >= this")
		speedupGate = flag.Bool("speedup-gate", true, "require the gated benchmark pair and enforce the speedup; disable for benchmark suites without that pair")
		serialName  = flag.String("serial-name", "BenchmarkAnalyze/serial", "benchmark filling the report's serial (baseline) slot")
		parName     = flag.String("parallel-name", "BenchmarkAnalyze/parallel", "benchmark filling the report's parallel (contender) slot")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sums, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(sums) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", *in)
	}

	rep := report{MinSpeedup: *minSpeedup, Benchmarks: sums}
	for i := range sums {
		if rep.Procs < sums[i].Procs {
			rep.Procs = sums[i].Procs
		}
		switch sums[i].Name {
		case *serialName:
			rep.Serial = &sums[i]
		case *parName:
			rep.Parallel = &sums[i]
		}
	}
	if rep.Serial != nil && rep.Parallel != nil && rep.Parallel.NsPerOp > 0 {
		rep.Speedup = rep.Serial.NsPerOp / rep.Parallel.NsPerOp
	}
	rep.Enforced = *speedupGate && rep.Procs >= *minProcs

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}

	if !*speedupGate {
		fmt.Fprintf(os.Stderr, "benchgate: recorded %d benchmarks at GOMAXPROCS=%d, speedup gate disabled\n",
			len(sums), rep.Procs)
		return nil
	}
	if rep.Serial == nil || rep.Parallel == nil {
		return fmt.Errorf("missing %s or %s in input", *serialName, *parName)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %s %.0f ns/op, %s %.0f ns/op, speedup %.2fx at GOMAXPROCS=%d\n",
		*serialName, rep.Serial.NsPerOp, *parName, rep.Parallel.NsPerOp, rep.Speedup, rep.Procs)
	if !rep.Enforced {
		fmt.Fprintf(os.Stderr, "benchgate: GOMAXPROCS=%d < %d, speedup not enforced\n", rep.Procs, *minProcs)
		return nil
	}
	if rep.Speedup < *minSpeedup {
		return fmt.Errorf("%s regressed against %s: speedup %.2fx < required %.2fx at GOMAXPROCS=%d",
			*parName, *serialName, rep.Speedup, *minSpeedup, rep.Procs)
	}
	return nil
}

// parseBench reads `go test -bench` output and aggregates repeated runs of
// the same benchmark into best-of summaries, in first-seen order.
func parseBench(r io.Reader) ([]summary, error) {
	best := make(map[string]*summary)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		name, rn, procs, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s, seen := best[name]
		if !seen {
			s = &summary{Name: name, Procs: procs, NsPerOp: rn.NsPerOp,
				BytesPerOp: rn.BytesPerOp, AllocsPerOp: rn.AllocsPerOp, MBPerSec: rn.MBPerSec}
			best[name] = s
			order = append(order, name)
		} else if rn.NsPerOp < s.NsPerOp {
			s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.MBPerSec = rn.NsPerOp, rn.BytesPerOp, rn.AllocsPerOp, rn.MBPerSec
		}
		s.Runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]summary, 0, len(order))
	for _, name := range order {
		out = append(out, *best[name])
	}
	return out, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkAnalyze/serial-8   3   512345 ns/op   9.07 MB/s   2201 B/op   76 allocs/op
//
// The -8 suffix is the GOMAXPROCS the benchmark ran at (absent at 1).
func parseLine(line string) (name string, rn run, procs int, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", run{}, 0, false
	}
	name, procs = splitProcs(fields[0])
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", run{}, 0, false
	}
	got := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", run{}, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			rn.NsPerOp, got = v, true
		case "B/op":
			rn.BytesPerOp = v
		case "allocs/op":
			rn.AllocsPerOp = v
		case "MB/s":
			rn.MBPerSec = v
		}
	}
	return name, rn, procs, got
}

// splitProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 1 {
		return s, 1
	}
	return s[:i], n
}
