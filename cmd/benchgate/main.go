// Command benchgate turns `go test -bench` output into a benchmark-
// regression gate for the parallel ingestion path.
//
// It parses the standard benchmark output format, records every benchmark
// (best-of-count ns/op, B/op, allocs/op, MB/s) into a JSON report, and
// compares a gated pair of benchmarks — by default BenchmarkAnalyze/serial
// (the baseline, the report's serial slot) against BenchmarkAnalyze/parallel
// (the contender, the parallel slot); -serial-name/-parallel-name repoint
// the pair, e.g. at BenchmarkRestore/cold vs /warm for the warm-restart
// gate. When the benchmarks ran at GOMAXPROCS >= the enforcement threshold
// (default 4), benchgate exits nonzero if the contender did not reach the
// required speedup over the baseline; below the threshold the comparison is
// recorded but not enforced, because a speedup cannot materialize without
// cores (single-core parallel ingestion degrades to the sequential path by
// design; pass -min-procs 1 for pairs whose speedup does not come from
// cores, like warm-vs-cold restart). With -speedup-gate=false the report is
// still written but the pair is neither required nor compared — for
// benchmark suites (like the serving benchmarks) that have no such pair.
//
// Beyond the speedup pair, three absolute per-benchmark gates catch
// regressions that a relative comparison cannot: -min-mbps sets MB/s floors,
// -max-allocs sets allocs/op ceilings, and -max-ns sets ns/op ceilings (the
// latency gate the load harness uses for its p99 and error-rate lines). All
// take comma-separated name=value pairs (a bare value applies to the serial
// benchmark), are recorded into the report's per-benchmark entries
// (min_mbps / max_allocs / max_ns), and fail the run when violated —
// allocation ceilings unconditionally (alloc counts are
// hardware-independent), throughput floors and latency ceilings likewise
// since the committed values are chosen to hold on the slowest supported
// runner.
// -gates-from re-reads the gates recorded in a previous report, so CI can
// enforce exactly what the committed BENCH_*.json baseline promises;
// explicit flags override per benchmark.
//
// -compare diffs the new numbers against a previous report and writes a
// benchstat-style old-vs-new table (ns/op, MB/s, allocs/op deltas) for
// upload as a workflow artifact. The comparison never fails the run — the
// gates do that.
//
// Usage:
//
//	go test -bench 'BenchmarkAnalyze|...' -benchtime=1x -count=3 -benchmem | tee bench.txt
//	benchgate -in bench.txt -out BENCH_ingest.json -min-speedup 1.0 \
//	    -gates-from BENCH_ingest.json -compare BENCH_ingest.json -compare-out bench_compare.txt
//	benchgate -in bench.txt -out BENCH_restore.json -min-speedup 1.0 -min-procs 1 \
//	    -serial-name BenchmarkRestore/cold -parallel-name BenchmarkRestore/warm
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// run is one benchmark line: a name, an iteration count and metric pairs.
type run struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	MBPerSec    float64
}

// summary is the per-benchmark aggregate written to the report: the best
// (minimum) ns/op across -count repetitions, with the other metrics taken
// from that fastest run. MinMBPerSec/MaxAllocs record the absolute gates
// this benchmark was (and must keep being) held to.
type summary struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	MinMBPerSec float64 `json:"min_mbps,omitempty"`
	MaxAllocs   float64 `json:"max_allocs,omitempty"`
	MaxNs       float64 `json:"max_ns,omitempty"`
}

// report is the BENCH_ingest.json schema.
type report struct {
	Procs      int       `json:"procs"`
	Enforced   bool      `json:"enforced"`
	MinSpeedup float64   `json:"min_speedup"`
	Speedup    float64   `json:"speedup,omitempty"`
	Serial     *summary  `json:"serial,omitempty"`
	Parallel   *summary  `json:"parallel,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		in          = flag.String("in", "-", "benchmark output file (- for stdin)")
		out         = flag.String("out", "BENCH_ingest.json", "JSON report path (- for stdout)")
		minSpeedup  = flag.Float64("min-speedup", 1.0, "required parallel-over-serial speedup when enforcing")
		minProcs    = flag.Int("min-procs", 4, "enforce the speedup only at GOMAXPROCS >= this")
		speedupGate = flag.Bool("speedup-gate", true, "require the gated benchmark pair and enforce the speedup; disable for benchmark suites without that pair")
		serialName  = flag.String("serial-name", "BenchmarkAnalyze/serial", "benchmark filling the report's serial (baseline) slot")
		parName     = flag.String("parallel-name", "BenchmarkAnalyze/parallel", "benchmark filling the report's parallel (contender) slot")
		minMBps     = flag.String("min-mbps", "", "per-benchmark MB/s floors, comma-separated name=value pairs (bare value applies to -serial-name); recorded into the report and enforced")
		maxAllocs   = flag.String("max-allocs", "", "per-benchmark allocs/op ceilings, same syntax as -min-mbps; recorded into the report and enforced")
		maxNs       = flag.String("max-ns", "", "per-benchmark ns/op ceilings, same syntax as -min-mbps; recorded into the report and enforced")
		gatesFrom   = flag.String("gates-from", "", "previous report whose recorded min_mbps/max_allocs gates to enforce; explicit flags override per benchmark")
		compare     = flag.String("compare", "", "previous report to diff against; writes a benchstat-style old-vs-new table")
		compareOut  = flag.String("compare-out", "-", "comparison table path (- for stdout)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sums, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(sums) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", *in)
	}

	gates, err := collectGates(*gatesFrom, *minMBps, *maxAllocs, *maxNs, *serialName)
	if err != nil {
		return err
	}
	gateErrs, err := applyGates(sums, gates)
	if err != nil {
		return err
	}

	rep := report{MinSpeedup: *minSpeedup, Benchmarks: sums}
	for i := range sums {
		if rep.Procs < sums[i].Procs {
			rep.Procs = sums[i].Procs
		}
		switch sums[i].Name {
		case *serialName:
			rep.Serial = &sums[i]
		case *parName:
			rep.Parallel = &sums[i]
		}
	}
	if rep.Serial != nil && rep.Parallel != nil && rep.Parallel.NsPerOp > 0 {
		rep.Speedup = rep.Serial.NsPerOp / rep.Parallel.NsPerOp
	}
	rep.Enforced = *speedupGate && rep.Procs >= *minProcs

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}

	if *compare != "" {
		if err := writeComparison(*compare, sums, *compareOut); err != nil {
			return err
		}
	}

	for _, ge := range gateErrs {
		fmt.Fprintln(os.Stderr, "benchgate:", ge)
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("%d absolute gate violation(s)", len(gateErrs))
	}

	if !*speedupGate {
		fmt.Fprintf(os.Stderr, "benchgate: recorded %d benchmarks at GOMAXPROCS=%d, speedup gate disabled\n",
			len(sums), rep.Procs)
		return nil
	}
	if rep.Serial == nil || rep.Parallel == nil {
		return fmt.Errorf("missing %s or %s in input", *serialName, *parName)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %s %.0f ns/op, %s %.0f ns/op, speedup %.2fx at GOMAXPROCS=%d\n",
		*serialName, rep.Serial.NsPerOp, *parName, rep.Parallel.NsPerOp, rep.Speedup, rep.Procs)
	if !rep.Enforced {
		fmt.Fprintf(os.Stderr, "benchgate: GOMAXPROCS=%d < %d, speedup not enforced\n", rep.Procs, *minProcs)
		return nil
	}
	if rep.Speedup < *minSpeedup {
		return fmt.Errorf("%s regressed against %s: speedup %.2fx < required %.2fx at GOMAXPROCS=%d",
			*parName, rep.Serial.Name, rep.Speedup, *minSpeedup, rep.Procs)
	}
	return nil
}

// gate is one benchmark's absolute limits; zero means unset.
type gate struct {
	minMBps   float64
	maxAllocs float64
	maxNs     float64
}

// collectGates assembles the per-benchmark absolute gates: those recorded
// in the gatesFrom report first, then the explicit flag specs on top.
func collectGates(gatesFrom, minMBps, maxAllocs, maxNs, serialName string) (map[string]gate, error) {
	gates := make(map[string]gate)
	if gatesFrom != "" {
		prev, err := readReport(gatesFrom)
		if err != nil {
			return nil, fmt.Errorf("-gates-from: %w", err)
		}
		for _, s := range prev.Benchmarks {
			if s.MinMBPerSec > 0 || s.MaxAllocs > 0 || s.MaxNs > 0 {
				gates[s.Name] = gate{minMBps: s.MinMBPerSec, maxAllocs: s.MaxAllocs, maxNs: s.MaxNs}
			}
		}
	}
	if err := parseGateSpec(minMBps, serialName, gates, func(g *gate, v float64) { g.minMBps = v }); err != nil {
		return nil, fmt.Errorf("-min-mbps: %w", err)
	}
	if err := parseGateSpec(maxAllocs, serialName, gates, func(g *gate, v float64) { g.maxAllocs = v }); err != nil {
		return nil, fmt.Errorf("-max-allocs: %w", err)
	}
	if err := parseGateSpec(maxNs, serialName, gates, func(g *gate, v float64) { g.maxNs = v }); err != nil {
		return nil, fmt.Errorf("-max-ns: %w", err)
	}
	return gates, nil
}

// parseGateSpec parses a comma-separated list of name=value gate pairs
// (bare values target serialName) into gates via set.
func parseGateSpec(spec, serialName string, gates map[string]gate, set func(*gate, float64)) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val := serialName, part
		if i := strings.LastIndexByte(part, '='); i >= 0 {
			name, val = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad gate value %q (want a positive number)", part)
		}
		g := gates[name]
		set(&g, v)
		gates[name] = g
	}
	return nil
}

// applyGates records each gate into its benchmark's summary and returns the
// violations. A gate naming a benchmark absent from the input is an error:
// a silently unmatched gate is a gate that stopped gating.
func applyGates(sums []summary, gates map[string]gate) ([]error, error) {
	byName := make(map[string]*summary, len(sums))
	for i := range sums {
		byName[sums[i].Name] = &sums[i]
	}
	names := make([]string, 0, len(gates))
	for name := range gates {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []error
	for _, name := range names {
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("gate for %s matches no benchmark in the input", name)
		}
		g := gates[name]
		s.MinMBPerSec, s.MaxAllocs, s.MaxNs = g.minMBps, g.maxAllocs, g.maxNs
		if g.minMBps > 0 && s.MBPerSec < g.minMBps {
			violations = append(violations, fmt.Errorf("%s throughput %.2f MB/s is below the %.2f MB/s floor",
				name, s.MBPerSec, g.minMBps))
		}
		if g.maxAllocs > 0 && s.AllocsPerOp > g.maxAllocs {
			violations = append(violations, fmt.Errorf("%s allocations %.0f allocs/op exceed the %.0f allocs/op ceiling",
				name, s.AllocsPerOp, g.maxAllocs))
		}
		if g.maxNs > 0 && s.NsPerOp > g.maxNs {
			violations = append(violations, fmt.Errorf("%s latency %.0f ns/op exceeds the %.0f ns/op ceiling",
				name, s.NsPerOp, g.maxNs))
		}
	}
	return violations, nil
}

// readReport loads a previously written BENCH_*.json report.
func readReport(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// writeComparison diffs the new summaries against the oldPath report and
// writes a benchstat-style table to outPath.
func writeComparison(oldPath string, sums []summary, outPath string) error {
	prev, err := readReport(oldPath)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var b strings.Builder
	formatComparison(&b, prev.Benchmarks, sums)
	if outPath == "-" {
		_, err = os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(outPath, []byte(b.String()), 0o644)
}

// formatComparison renders old-vs-new metric tables in benchstat style: one
// section per metric, one row per benchmark present on both sides, with the
// relative delta (negative ns/op and allocs/op deltas are improvements,
// negative MB/s deltas are regressions). One-sided benchmarks are listed at
// the end so additions and removals stay visible.
func formatComparison(w io.Writer, old, new []summary) {
	oldBy := make(map[string]summary, len(old))
	for _, s := range old {
		oldBy[s.Name] = s
	}
	type row struct {
		name     string
		old, new float64
	}
	metrics := []struct {
		label string
		get   func(summary) float64
	}{
		{"ns/op", func(s summary) float64 { return s.NsPerOp }},
		{"MB/s", func(s summary) float64 { return s.MBPerSec }},
		{"allocs/op", func(s summary) float64 { return s.AllocsPerOp }},
	}
	for _, m := range metrics {
		var rows []row
		for _, s := range new {
			o, ok := oldBy[s.Name]
			if !ok || m.get(o) == 0 && m.get(s) == 0 {
				continue
			}
			rows = append(rows, row{s.Name, m.get(o), m.get(s)})
		}
		if len(rows) == 0 {
			continue
		}
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "name\told %s\tnew %s\tdelta\n", m.label, m.label)
		for _, r := range rows {
			delta := "~"
			if r.old != 0 {
				delta = fmt.Sprintf("%+.2f%%", (r.new-r.old)/r.old*100)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
				strings.TrimPrefix(r.name, "Benchmark"), formatMetric(r.old), formatMetric(r.new), delta)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	newBy := make(map[string]bool, len(new))
	for _, s := range new {
		newBy[s.Name] = true
	}
	for _, s := range new {
		if _, ok := oldBy[s.Name]; !ok {
			fmt.Fprintf(w, "new benchmark: %s\n", s.Name)
		}
	}
	for _, s := range old {
		if !newBy[s.Name] {
			fmt.Fprintf(w, "removed benchmark: %s\n", s.Name)
		}
	}
}

// formatMetric renders a metric value without trailing decimal noise.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// parseBench reads `go test -bench` output and aggregates repeated runs of
// the same benchmark into best-of summaries, in first-seen order.
func parseBench(r io.Reader) ([]summary, error) {
	best := make(map[string]*summary)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		name, rn, procs, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s, seen := best[name]
		if !seen {
			s = &summary{Name: name, Procs: procs, NsPerOp: rn.NsPerOp,
				BytesPerOp: rn.BytesPerOp, AllocsPerOp: rn.AllocsPerOp, MBPerSec: rn.MBPerSec}
			best[name] = s
			order = append(order, name)
		} else if rn.NsPerOp < s.NsPerOp {
			s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.MBPerSec = rn.NsPerOp, rn.BytesPerOp, rn.AllocsPerOp, rn.MBPerSec
		}
		s.Runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]summary, 0, len(order))
	for _, name := range order {
		out = append(out, *best[name])
	}
	return out, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkAnalyze/serial-8   3   512345 ns/op   9.07 MB/s   2201 B/op   76 allocs/op
//
// The -8 suffix is the GOMAXPROCS the benchmark ran at (absent at 1).
func parseLine(line string) (name string, rn run, procs int, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", run{}, 0, false
	}
	name, procs = splitProcs(fields[0])
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", run{}, 0, false
	}
	got := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", run{}, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			rn.NsPerOp, got = v, true
		case "B/op":
			rn.BytesPerOp = v
		case "allocs/op":
			rn.AllocsPerOp = v
		case "MB/s":
			rn.MBPerSec = v
		}
	}
	return name, rn, procs, got
}

// splitProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 1 {
		return s, 1
	}
	return s[:i], n
}
