package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: logdiver
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAnalyze/serial-8    	       1	2102864185 ns/op	   9.07 MB/s	220100392 B/op	  768125 allocs/op
BenchmarkAnalyze/serial-8    	       1	1821021679 ns/op	  10.48 MB/s	220100424 B/op	  768125 allocs/op
BenchmarkAnalyze/parallel-8  	       1	 893916163 ns/op	  21.97 MB/s	231100424 B/op	  791125 allocs/op
BenchmarkAnalyze/parallel-8  	       1	 865343272 ns/op	  22.19 MB/s	231100408 B/op	  791125 allocs/op
BenchmarkE2Outcomes-8        	     120	   9876543 ns/op	 1024 B/op	      12 allocs/op
BenchmarkGenerate-8          	       2	 500000000 ns/op	       12252 runs/op
PASS
ok  	logdiver	27.962s
`

func TestParseBench(t *testing.T) {
	sums, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d summaries, want 4: %+v", len(sums), sums)
	}
	byName := map[string]summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	ser, ok := byName["BenchmarkAnalyze/serial"]
	if !ok {
		t.Fatal("missing BenchmarkAnalyze/serial")
	}
	if ser.Procs != 8 || ser.Runs != 2 {
		t.Errorf("serial procs=%d runs=%d, want 8, 2", ser.Procs, ser.Runs)
	}
	if ser.NsPerOp != 1821021679 {
		t.Errorf("serial best ns/op = %v, want 1821021679 (min of the two runs)", ser.NsPerOp)
	}
	if ser.AllocsPerOp != 768125 || ser.MBPerSec != 10.48 {
		t.Errorf("serial allocs=%v MB/s=%v, want metrics from the fastest run", ser.AllocsPerOp, ser.MBPerSec)
	}
	par := byName["BenchmarkAnalyze/parallel"]
	if par.NsPerOp != 865343272 {
		t.Errorf("parallel best ns/op = %v, want 865343272", par.NsPerOp)
	}
	if got := ser.NsPerOp / par.NsPerOp; got < 2.0 {
		t.Errorf("sample speedup = %.2f, want > 2.0", got)
	}
	e2 := byName["BenchmarkE2Outcomes"]
	if e2.NsPerOp != 9876543 || e2.BytesPerOp != 1024 {
		t.Errorf("E2 = %+v, want ns/op 9876543, B/op 1024", e2)
	}
	// Custom metrics (runs/op) must not break parsing.
	if g := byName["BenchmarkGenerate"]; g.NsPerOp != 500000000 {
		t.Errorf("Generate ns/op = %v, want 500000000", g.NsPerOp)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	logdiver	27.962s",
		"--- BENCH: BenchmarkGenerate-8",
		"BenchmarkBroken notanumber 123 ns/op",
	} {
		if _, _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted, want rejected", line)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkAnalyze/serial-8", "BenchmarkAnalyze/serial", 8},
		{"BenchmarkAnalyze/serial", "BenchmarkAnalyze/serial", 1},
		{"BenchmarkFoo-16", "BenchmarkFoo", 16},
		{"BenchmarkE10Coalesce", "BenchmarkE10Coalesce", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}
