package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: logdiver
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAnalyze/serial-8    	       1	2102864185 ns/op	   9.07 MB/s	220100392 B/op	  768125 allocs/op
BenchmarkAnalyze/serial-8    	       1	1821021679 ns/op	  10.48 MB/s	220100424 B/op	  768125 allocs/op
BenchmarkAnalyze/parallel-8  	       1	 893916163 ns/op	  21.97 MB/s	231100424 B/op	  791125 allocs/op
BenchmarkAnalyze/parallel-8  	       1	 865343272 ns/op	  22.19 MB/s	231100408 B/op	  791125 allocs/op
BenchmarkE2Outcomes-8        	     120	   9876543 ns/op	 1024 B/op	      12 allocs/op
BenchmarkGenerate-8          	       2	 500000000 ns/op	       12252 runs/op
PASS
ok  	logdiver	27.962s
`

func TestParseBench(t *testing.T) {
	sums, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d summaries, want 4: %+v", len(sums), sums)
	}
	byName := map[string]summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	ser, ok := byName["BenchmarkAnalyze/serial"]
	if !ok {
		t.Fatal("missing BenchmarkAnalyze/serial")
	}
	if ser.Procs != 8 || ser.Runs != 2 {
		t.Errorf("serial procs=%d runs=%d, want 8, 2", ser.Procs, ser.Runs)
	}
	if ser.NsPerOp != 1821021679 {
		t.Errorf("serial best ns/op = %v, want 1821021679 (min of the two runs)", ser.NsPerOp)
	}
	if ser.AllocsPerOp != 768125 || ser.MBPerSec != 10.48 {
		t.Errorf("serial allocs=%v MB/s=%v, want metrics from the fastest run", ser.AllocsPerOp, ser.MBPerSec)
	}
	par := byName["BenchmarkAnalyze/parallel"]
	if par.NsPerOp != 865343272 {
		t.Errorf("parallel best ns/op = %v, want 865343272", par.NsPerOp)
	}
	if got := ser.NsPerOp / par.NsPerOp; got < 2.0 {
		t.Errorf("sample speedup = %.2f, want > 2.0", got)
	}
	e2 := byName["BenchmarkE2Outcomes"]
	if e2.NsPerOp != 9876543 || e2.BytesPerOp != 1024 {
		t.Errorf("E2 = %+v, want ns/op 9876543, B/op 1024", e2)
	}
	// Custom metrics (runs/op) must not break parsing.
	if g := byName["BenchmarkGenerate"]; g.NsPerOp != 500000000 {
		t.Errorf("Generate ns/op = %v, want 500000000", g.NsPerOp)
	}
}

func TestParseGateSpec(t *testing.T) {
	gates := map[string]gate{}
	err := parseGateSpec("40.5, BenchmarkAnalyze/parallel=160", "BenchmarkAnalyze/serial",
		gates, func(g *gate, v float64) { g.minMBps = v })
	if err != nil {
		t.Fatal(err)
	}
	if err := parseGateSpec("BenchmarkAnalyze/serial=153625", "BenchmarkAnalyze/serial",
		gates, func(g *gate, v float64) { g.maxAllocs = v }); err != nil {
		t.Fatal(err)
	}
	want := map[string]gate{
		"BenchmarkAnalyze/serial":   {minMBps: 40.5, maxAllocs: 153625},
		"BenchmarkAnalyze/parallel": {minMBps: 160},
	}
	if len(gates) != len(want) {
		t.Fatalf("gates = %+v, want %+v", gates, want)
	}
	for name, g := range want {
		if gates[name] != g {
			t.Errorf("gates[%q] = %+v, want %+v", name, gates[name], g)
		}
	}
	for _, bad := range []string{"=-3", "name=zero", "name=0", "name=-1"} {
		if err := parseGateSpec(bad, "s", map[string]gate{}, func(g *gate, v float64) {}); err == nil {
			t.Errorf("parseGateSpec(%q) accepted, want error", bad)
		}
	}
}

func TestApplyGates(t *testing.T) {
	mkSums := func() []summary {
		return []summary{
			{Name: "BenchmarkAnalyze/serial", NsPerOp: 1.4e9, MBPerSec: 50.4, AllocsPerOp: 149638},
			{Name: "BenchmarkAnalyze/parallel", NsPerOp: 3.7e8, MBPerSec: 170.2, AllocsPerOp: 150001},
		}
	}

	sums := mkSums()
	viol, err := applyGates(sums, map[string]gate{
		"BenchmarkAnalyze/serial": {minMBps: 40.5, maxAllocs: 153625, maxNs: 2e9},
	})
	if err != nil || len(viol) != 0 {
		t.Fatalf("passing gates: violations=%v err=%v", viol, err)
	}
	// Gates must be recorded into the summaries for the report.
	if sums[0].MinMBPerSec != 40.5 || sums[0].MaxAllocs != 153625 || sums[0].MaxNs != 2e9 {
		t.Errorf("gates not recorded: %+v", sums[0])
	}
	if sums[1].MinMBPerSec != 0 || sums[1].MaxAllocs != 0 || sums[1].MaxNs != 0 {
		t.Errorf("ungated benchmark got gates: %+v", sums[1])
	}

	viol, err = applyGates(mkSums(), map[string]gate{
		"BenchmarkAnalyze/serial":   {minMBps: 60},
		"BenchmarkAnalyze/parallel": {maxAllocs: 150000},
	})
	if err != nil || len(viol) != 2 {
		t.Fatalf("want 2 violations, got %v (err=%v)", viol, err)
	}

	// The latency ceiling fails a too-slow benchmark on its own.
	viol, err = applyGates(mkSums(), map[string]gate{
		"BenchmarkAnalyze/serial": {maxNs: 1e9},
	})
	if err != nil || len(viol) != 1 || !strings.Contains(viol[0].Error(), "ceiling") {
		t.Fatalf("latency ceiling: want 1 ceiling violation, got %v (err=%v)", viol, err)
	}

	if _, err = applyGates(mkSums(), map[string]gate{"BenchmarkGone": {minMBps: 1}}); err == nil {
		t.Error("gate on a missing benchmark accepted, want error")
	}
}

func TestCollectGatesFromReport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_prev.json"
	prev := report{Benchmarks: []summary{
		{Name: "BenchmarkAnalyze/serial", MinMBPerSec: 40.5, MaxAllocs: 153625},
		{Name: "BenchmarkAnalyze/parallel"},
		{Name: "BenchmarkLoadgen/p99", MaxNs: 2.5e8},
	}}
	buf, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Flags override the recorded gates per benchmark.
	gates, err := collectGates(path, "45", "", "", "BenchmarkAnalyze/serial")
	if err != nil {
		t.Fatal(err)
	}
	got := gates["BenchmarkAnalyze/serial"]
	if got.minMBps != 45 || got.maxAllocs != 153625 {
		t.Errorf("merged gate = %+v, want floor 45 from flag, ceiling 153625 from report", got)
	}
	if g := gates["BenchmarkLoadgen/p99"]; g.maxNs != 2.5e8 {
		t.Errorf("recorded max_ns gate = %+v, want 2.5e8 from report", g)
	}
	if len(gates) != 2 {
		t.Errorf("gates = %+v, want serial + loadgen entries (parallel recorded none)", gates)
	}
}

func TestFormatComparison(t *testing.T) {
	old := []summary{
		{Name: "BenchmarkAnalyze/serial", NsPerOp: 1412254790, MBPerSec: 13.51, AllocsPerOp: 768125},
		{Name: "BenchmarkRemoved", NsPerOp: 10},
	}
	newer := []summary{
		{Name: "BenchmarkAnalyze/serial", NsPerOp: 378530118, MBPerSec: 50.40, AllocsPerOp: 149638},
		{Name: "BenchmarkAdded", NsPerOp: 20},
	}
	var b strings.Builder
	formatComparison(&b, old, newer)
	out := b.String()
	for _, want := range []string{
		"old ns/op", "new ns/op", "Analyze/serial", "-73.20%", // faster
		"old MB/s", "+273.06%", // more throughput
		"old allocs/op", "-80.52%", // fewer allocations
		"new benchmark: BenchmarkAdded",
		"removed benchmark: BenchmarkRemoved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	logdiver	27.962s",
		"--- BENCH: BenchmarkGenerate-8",
		"BenchmarkBroken notanumber 123 ns/op",
	} {
		if _, _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted, want rejected", line)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkAnalyze/serial-8", "BenchmarkAnalyze/serial", 8},
		{"BenchmarkAnalyze/serial", "BenchmarkAnalyze/serial", 1},
		{"BenchmarkFoo-16", "BenchmarkFoo", 16},
		{"BenchmarkE10Coalesce", "BenchmarkE10Coalesce", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}
