// Command ldvet runs logdiver's custom static analyzers (internal/ldvet)
// over the module: a multichecker in the spirit of go vet.
//
// Usage:
//
//	ldvet [-json] [package-dir ...]
//	ldvet ./...
//
// With no arguments or with the literal "./..." it analyzes every package
// in the enclosing module. Exit status: 0 when clean, 1 when any analyzer
// reported a diagnostic, 2 when packages failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"logdiver/internal/ldvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ldvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("analyzers", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ldvet [-json] [package-dir ...]\n\nAnalyzers:\n")
		for _, a := range ldvet.Analyzers() {
			fmt.Fprintf(stderr, "  %s: %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range ldvet.Analyzers() {
			fmt.Fprintf(stdout, "%s\t%s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, path, err := ldvet.FindModule(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	l := ldvet.NewLoader(root, path)

	var pkgs []*ldvet.Package
	targets := fs.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "./...") {
		pkgs, err = l.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, t := range targets {
			abs, err := filepath.Abs(t)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || rel == ".." || strings.HasPrefix(filepath.ToSlash(rel), "../") {
				fmt.Fprintf(stderr, "ldvet: %s is outside module %s\n", t, root)
				return 2
			}
			pkg, err := l.LoadDir(rel)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	status := 0
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "ldvet: %s: %v\n", p.Path, terr)
			status = 2
		}
	}
	if status != 0 {
		return status
	}

	diags := ldvet.Run(l, pkgs, ldvet.Analyzers())
	if *jsonOut {
		if diags == nil {
			diags = []ldvet.Diagnostic{} // a clean run is an empty array, not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
