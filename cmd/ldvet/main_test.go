package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestModuleClean is the CI gate in test form: ldvet over the whole module
// must exit 0 with no output.
func TestModuleClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("ldvet ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() > 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestSeededFindings points the driver at the analyzer testdata, which
// contains deliberately non-exhaustive switches and per-call compiles, and
// checks the exit status and JSON shape.
func TestSeededFindings(t *testing.T) {
	for dir, analyzer := range map[string]string{
		"../../internal/ldvet/testdata/src/exhaustive":    "exhaustive",
		"../../internal/ldvet/testdata/src/regexpcompile": "regexpcompile",
		"../../internal/ldvet/testdata/src/pooledretain":  "pooledretain",
		"../../internal/ldvet/testdata/src/hotalloc":      "hotalloc",
	} {
		var out, errOut strings.Builder
		code := run([]string{"-json", dir}, &out, &errOut)
		if code != 1 {
			t.Fatalf("ldvet %s exited %d, want 1\nstderr:\n%s", dir, code, errOut.String())
		}
		var diags []struct {
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			File     string `json:"file"`
			Line     int    `json:"line"`
		}
		if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
			t.Fatalf("ldvet %s produced invalid JSON: %v\n%s", dir, err, out.String())
		}
		if len(diags) == 0 {
			t.Fatalf("ldvet %s produced no diagnostics", dir)
		}
		named := false
		for _, d := range diags {
			if d.File == "" || d.Line == 0 || d.Message == "" {
				t.Errorf("incomplete diagnostic: %+v", d)
			}
			if d.Analyzer == analyzer {
				named = true
			}
		}
		if !named {
			t.Errorf("ldvet %s reported no %s diagnostic:\n%s", dir, analyzer, out.String())
		}
	}
}

// TestJSONCleanIsEmptyArray pins the machine-readable contract: a clean run
// under -json prints an empty JSON array, never null, so `jq length` and
// similar consumers need no null guard.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "../../internal/machine"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestNonExhaustiveCategorySwitchFlagged pins the headline acceptance
// criterion: a switch over a Category-shaped enum missing a member is
// reported by name.
func TestNonExhaustiveCategorySwitchFlagged(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/ldvet/testdata/src/exhaustive"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "missing NodeRecovered") {
		t.Errorf("diagnostic does not name the missing member:\n%s", out.String())
	}
}

func TestOutsideModuleRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"/"}, &out, &errOut); code != 2 {
		t.Fatalf("ldvet / exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "outside module") {
		t.Errorf("missing outside-module error, got: %s", errOut.String())
	}
}

func TestAnalyzersList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"exhaustive", "regexpcompile", "pooledretain", "hotalloc", "suppress"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("analyzer %s missing from listing:\n%s", name, out.String())
		}
	}
}
