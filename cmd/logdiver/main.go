// Command logdiver analyzes HPC log archives: it joins workload accounting,
// ALPS application logs and syslog error logs, attributes every application
// run's outcome, and prints the study's tables.
//
// Usage:
//
//	logdiver analyze -accounting acc.log -apsys apsys.log -syslog sys.log \
//	    [-truth truth.jsonl] [-machine bluewaters|small] [-format ascii|md|csv]
//	    [-rules site-rules.txt] [-parallelism N] [-parse-mode lenient|strict]
//	logdiver analyze -fleet-config fleet.conf [-format ascii|md|csv] \
//	    [-parallelism N] [-parse-mode lenient|strict] [-tz ZONE]
//	logdiver coalesce -syslog sys.log [-temporal 5m] [-spatial 2m] [-top 25]
//	logdiver avail -syslog sys.log [-machine bluewaters|small] [-top 5]
//	logdiver lint-rules [-rules site-rules.txt] [-json]
//	logdiver mutate -in sys.log -out sys.corrupt.log [-manifest m.json] \
//	    [-seed N] [-budget F] [-ops truncate,encoding,...] [-max-per-op N]
//	logdiver generate -days 30 -out ./archive [-parallelism N] \
//	    [-machine bluewaters|small] [-start YYYY-MM-DD] [-seed N]
//	logdiver generate -fleet K -days D -out ./fleet [-seed N] \
//	    [-fleet-window W] [-fleet-only NAME]
//	logdiver simulate -accounting acc.log -apsys apsys.log -syslog sys.log \
//	    [-policy policies.conf | -checkpoint daly -retry-limit 2 ...] \
//	    [-seed N] [-machine bluewaters|small] [-format ascii|md|csv] [-json]
//	logdiver state -file state.ldv | -state-dir ./state [-json]
//	logdiver version
//
// lint-rules runs the internal/rulecheck semantic linter over a classifier
// rule file (or over the built-in taxonomy when -rules is omitted) and
// exits nonzero when any error-severity finding fires. analyze applies the
// same linter to -rules files before using them; -validate-rules=false
// skips that gate.
//
// -parallelism bounds the worker pools of the streaming ingestion layer
// (analyze: the three archives are parsed and classified concurrently) and
// of archive emission (generate). 0 means one worker per CPU; 1 forces the
// sequential path. Results and output bytes are identical at any setting.
//
// -parse-mode selects the malformed-input policy: lenient (default) skips
// unparseable lines and accounts them per kind in the stderr summary;
// strict fails on the first malformed line, naming archive and line.
//
// mutate deterministically corrupts a log archive for robustness testing
// (seeded operators: truncate, interleave, duplicate, reorder, skew,
// encoding, fielddrop, oversize) and writes a JSON manifest of every
// injected mutation.
//
// generate writes the three raw archives plus ground truth. -machine small
// rescales both the topology and the workload so a few days analyze in
// seconds; -start and -seed let successive invocations produce disjoint
// production windows, which the serving smoke tests append to a live
// logdiverd data directory.
//
// analyze -fleet-config runs the offline pipeline over every shard of a
// fleet config (one archive directory per machine), folds the per-machine
// snapshots with the exact store merge, and prints the fleet tables (F1-F3).
// generate -fleet K lays out a K-machine small-profile fleet under -out —
// one archive subdirectory per machine plus a ready-to-run fleet.conf —
// while -fleet-window W appends production window W to the existing shard
// archives (optionally a single machine via -fleet-only), which the fleet
// smoke test uses to advance one shard's epoch.
//
// simulate runs the counterfactual resilience simulator over an analyzed
// archive: it attributes every run exactly as analyze does, then replays
// the run stream under declarative resilience policies (checkpoint/restart
// with fixed or Daly-optimal intervals, bounded retry, detection-coverage
// counterfactuals) and prints the what-if tables (W1-W3) comparing each
// policy against the measured baseline. Policies come from a -policy config
// file (see SIMULATION.md), from the inline single-policy flags, or default
// to the built-in policy set. Same archive and -seed: identical output.
//
// state inspects and verifies a logdiverd durable-state file (the
// <state-dir>/state.ldv a daemon warm-starts from): it validates the
// header, version and checksum exactly as the daemon would and prints the
// epoch, configuration fingerprint, tail offsets and pipeline population —
// or fails nonzero with the rejection reason. Use it as a pre-flight check
// before restarting a production daemon.
//
// The analyze subcommand prints the experiment tables (E1-E17, plus the
// A1-A3 ablations when -truth is given) to stdout, and an archive-hygiene
// summary (per-kind malformed-line counts) to stderr. coalesce prints the
// machine-level error events; avail reconstructs node availability.
// version prints the build's module version, VCS revision and Go version.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"strings"

	"logdiver"
	"logdiver/internal/avail"
	"logdiver/internal/coalesce"
	"logdiver/internal/gen"
	"logdiver/internal/metrics"
	"logdiver/internal/mutate"
	"logdiver/internal/rulecheck"
	"logdiver/internal/syslogx"
	"logdiver/internal/taxonomy"
	"logdiver/internal/version"
	"logdiver/internal/whatif"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "logdiver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: logdiver <analyze|generate> [flags]")
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Println(version.Get())
		return nil
	case "analyze":
		return analyze(args[1:])
	case "generate":
		return generate(args[1:])
	case "coalesce":
		return coalesceCmd(args[1:])
	case "avail":
		return availCmd(args[1:])
	case "lint-rules":
		return lintRules(args[1:])
	case "mutate":
		return mutateCmd(args[1:])
	case "simulate":
		return simulate(args[1:])
	case "state":
		return stateCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want analyze, avail, coalesce, generate, lint-rules, mutate, simulate or state)", args[0])
	}
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		accPath  = fs.String("accounting", "", "path to the accounting archive")
		apsPath  = fs.String("apsys", "", "path to the apsys archive")
		sysPath  = fs.String("syslog", "", "path to the syslog archive")
		truth    = fs.String("truth", "", "optional ground-truth sidecar (enables E9/A1/A2)")
		machine  = fs.String("machine", "bluewaters", "machine model: bluewaters or small")
		format   = fs.String("format", "ascii", "output format: ascii, md or csv")
		timezone = fs.String("tz", "UTC", "accounting timestamp zone")
		rules    = fs.String("rules", "", "optional classifier rule file (replaces the built-in taxonomy rules)")
		validate = fs.Bool("validate-rules", true, "lint -rules files and reject rule sets with error-severity findings")
		par      = fs.Int("parallelism", 0, "ingestion/attribution worker count (0 = GOMAXPROCS, 1 = sequential)")
		mode     = fs.String("parse-mode", "lenient", "malformed-input policy: lenient (skip and account) or strict (fail fast)")
		fleetCfg = fs.String("fleet-config", "", "fleet config file: analyze every [shard NAME] archive dir and print merged fleet tables (mutually exclusive with the per-archive flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parseMode, err := logdiver.ParseModeFromString(*mode)
	if err != nil {
		return err
	}
	if *fleetCfg != "" {
		if *accPath != "" || *apsPath != "" || *sysPath != "" || *truth != "" {
			return fmt.Errorf("analyze: -fleet-config is mutually exclusive with -accounting/-apsys/-syslog/-truth")
		}
		return analyzeFleet(*fleetCfg, logdiver.Options{Parallelism: *par, ParseMode: parseMode}, *timezone, *format)
	}
	if *apsPath == "" {
		return fmt.Errorf("analyze: -apsys is required (application runs are the unit of analysis)")
	}

	archives, top, closers, err := openArchives(*accPath, *apsPath, *sysPath, *machine, *timezone)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()

	opts := logdiver.Options{Parallelism: *par, ParseMode: parseMode}
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			return err
		}
		parsed, err := taxonomy.ReadRuleFile(f)
		f.Close()
		if err != nil {
			return err
		}
		if *validate {
			cls, findings, err := rulecheck.NewValidatedClassifier(parsed, rulecheck.Options{})
			for _, fd := range findings {
				fmt.Fprintf(os.Stderr, "logdiver: %s: %s\n", *rules, fd)
			}
			if err != nil {
				return fmt.Errorf("%s: %w (rerun with -validate-rules=false to override)", *rules, err)
			}
			opts.Classifier = cls
		} else {
			opts.Classifier = taxonomy.NewClassifier(taxonomy.Rules(parsed))
		}
	}
	res, err := logdiver.Analyze(archives, top, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed: %d jobs, %d runs, %d events (malformed lines skipped: %d accounting, %d apsys, %d syslog)\n",
		len(res.Jobs), len(res.Runs), len(res.Events),
		res.Parse.AccountingMalformed, res.Parse.ApsysMalformed, res.Parse.SyslogMalformed)
	for _, h := range res.Parse.Hygiene() {
		fmt.Fprintf(os.Stderr, "  %s\n", h)
	}
	for _, s := range res.Parse.SyslogDetail.Samples.All() {
		fmt.Fprintf(os.Stderr, "  malformed: %s\n", s)
	}

	var truthMap map[uint64]logdiver.Truth
	if *truth != "" {
		f, err := os.Open(*truth)
		if err != nil {
			return err
		}
		truthMap, err = gen.ReadTruth(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	tables, err := logdiver.Experiments(res, top, truthMap)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		var renderErr error
		switch *format {
		case "ascii":
			renderErr = tbl.Render(os.Stdout)
			fmt.Println()
		case "md":
			renderErr = tbl.RenderMarkdown(os.Stdout)
		case "csv":
			fmt.Printf("# %s: %s\n", tbl.ID, tbl.Title)
			renderErr = tbl.RenderCSV(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if renderErr != nil {
			return renderErr
		}
	}
	return nil
}

// openArchives resolves the machine model and timezone and opens whichever
// of the three archive paths are non-empty. The caller closes the returned
// closers when the analysis is done. Shared by analyze and simulate.
func openArchives(accPath, apsPath, sysPath, machineName, timezone string) (logdiver.Archives, *logdiver.Topology, []io.Closer, error) {
	var mc logdiver.MachineConfig
	switch machineName {
	case "bluewaters":
		mc = logdiver.BlueWaters()
	case "small":
		mc = logdiver.SmallMachine()
	default:
		return logdiver.Archives{}, nil, nil, fmt.Errorf("unknown machine %q", machineName)
	}
	top, err := logdiver.NewTopology(mc)
	if err != nil {
		return logdiver.Archives{}, nil, nil, err
	}
	loc, err := time.LoadLocation(timezone)
	if err != nil {
		return logdiver.Archives{}, nil, nil, fmt.Errorf("timezone: %w", err)
	}

	archives := logdiver.Archives{Location: loc}
	var closers []io.Closer
	openInto := func(path string, dst *io.Reader) error {
		if path == "" {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		*dst = f
		return nil
	}
	for _, o := range []struct {
		path string
		dst  *io.Reader
	}{
		{accPath, &archives.Accounting},
		{apsPath, &archives.Apsys},
		{sysPath, &archives.Syslog},
	} {
		if err := openInto(o.path, o.dst); err != nil {
			for _, c := range closers {
				c.Close()
			}
			return logdiver.Archives{}, nil, nil, err
		}
	}
	return archives, top, closers, nil
}

// simulate replays an analyzed archive through the counterfactual resilience
// simulator: attribute every run, derive the by-scale MTTI table, and report
// what each policy (checkpoint/restart, retry, detection coverage) would
// have changed. Policies come from a -policy config file, from the inline
// flags (one policy), or default to whatif.DefaultPolicies.
func simulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		accPath  = fs.String("accounting", "", "path to the accounting archive")
		apsPath  = fs.String("apsys", "", "path to the apsys archive")
		sysPath  = fs.String("syslog", "", "path to the syslog archive")
		machine  = fs.String("machine", "bluewaters", "machine model: bluewaters or small")
		timezone = fs.String("tz", "UTC", "accounting timestamp zone")
		par      = fs.Int("parallelism", 0, "worker count for ingestion and simulation (0 = GOMAXPROCS; results are identical at any setting)")
		mode     = fs.String("parse-mode", "lenient", "malformed-input policy: lenient (skip and account) or strict (fail fast)")
		policy   = fs.String("policy", "", "policy config file (whatif format; mutually exclusive with the inline policy flags)")
		seed     = fs.Int64("seed", 1, "simulation seed (same seed, same archive: identical report)")
		format   = fs.String("format", "ascii", "output format: ascii, md or csv")
		jsonOut  = fs.Bool("json", false, "emit the full report as JSON instead of tables")

		// Inline single-policy flags, rendered into the same config
		// vocabulary the -policy file uses (read back via fs.Visit, so
		// only the name flag needs a binding).
		name = fs.String("name", "policy", "inline policy name")
	)
	fs.String("checkpoint", "", "checkpointing: none, fixed or daly")
	fs.Duration("checkpoint-interval", 0, "fixed checkpoint interval")
	fs.Duration("checkpoint-cost", 0, "time to write one checkpoint")
	fs.Duration("restart-cost", 0, "time to restore from a checkpoint")
	fs.Int("retry-limit", 0, "automatic retries per interrupted run")
	fs.Duration("retry-backoff", 0, "delay before each retry")
	fs.Float64("detect-fraction", 0, "fraction of silent XK failures made detectable [0,1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parseMode, err := logdiver.ParseModeFromString(*mode)
	if err != nil {
		return err
	}
	if *apsPath == "" {
		return fmt.Errorf("simulate: -apsys is required (application runs are the unit of analysis)")
	}

	// Inline flags render into the config text format, so the file and
	// flag paths share one parser, one validator and one vocabulary.
	var inline strings.Builder
	fmt.Fprintf(&inline, "[policy %s]\n", *name)
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "checkpoint", "checkpoint-interval", "checkpoint-cost",
			"restart-cost", "retry-limit", "retry-backoff", "detect-fraction":
			fmt.Fprintf(&inline, "%s = %s\n", f.Name, f.Value)
		}
	})
	inlineSet := strings.Count(inline.String(), "\n") > 1
	var policies []whatif.Policy
	switch {
	case *policy != "" && inlineSet:
		return fmt.Errorf("simulate: -policy is mutually exclusive with the inline policy flags")
	case *policy != "":
		if policies, err = whatif.LoadPolicies(*policy); err != nil {
			return err
		}
	case inlineSet:
		if policies, err = whatif.ParsePolicies(inline.String()); err != nil {
			return err
		}
	default:
		policies = whatif.DefaultPolicies()
	}

	archives, top, closers, err := openArchives(*accPath, *apsPath, *sysPath, *machine, *timezone)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	res, err := logdiver.Analyze(archives, top, logdiver.Options{Parallelism: *par, ParseMode: parseMode})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed: %d runs; simulating %d policies, seed %d\n",
		len(res.Runs), len(policies), *seed)

	mtti, err := metrics.MTTIByScale(res.Runs, metrics.GeometricBuckets(top.NumNodes()), 0)
	if err != nil {
		return err
	}
	rep, err := whatif.Simulate(whatif.Input{Runs: res.Runs, MTTI: mtti},
		policies, whatif.Options{Seed: *seed, Parallelism: *par})
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, tbl := range rep.Tables() {
		var renderErr error
		switch *format {
		case "ascii":
			renderErr = tbl.Render(os.Stdout)
			fmt.Println()
		case "md":
			renderErr = tbl.RenderMarkdown(os.Stdout)
		case "csv":
			fmt.Printf("# %s: %s\n", tbl.ID, tbl.Title)
			renderErr = tbl.RenderCSV(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if renderErr != nil {
			return renderErr
		}
	}
	return nil
}

// lintRules runs the semantic rule-set linter over a rule file, or over
// the built-in taxonomy when no file is given, and reports every finding.
// Error-severity findings (shadowed rules, universal patterns, duplicate
// names, ...) make the command fail; warnings alone do not.
func lintRules(args []string) error {
	fs := flag.NewFlagSet("lint-rules", flag.ContinueOnError)
	var (
		rules   = fs.String("rules", "", "classifier rule file to lint (default: the built-in taxonomy rules)")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var located []taxonomy.LocatedRule
	source := "builtin rules"
	if *rules != "" {
		source = *rules
		f, err := os.Open(*rules)
		if err != nil {
			return err
		}
		located, err = taxonomy.ReadRuleFile(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		located = taxonomy.Locate(taxonomy.Default().Rules())
	}

	findings := rulecheck.Check(located, rulecheck.Options{})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// Encode the empty set as [], not null, for downstream jq.
		if findings == nil {
			findings = []rulecheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, fd := range findings {
			fmt.Println(fd)
		}
	}
	var nerr, nwarn int
	for _, fd := range findings {
		if fd.Severity == rulecheck.Error {
			nerr++
		} else {
			nwarn++
		}
	}
	if nerr > 0 {
		return fmt.Errorf("lint-rules: %s: %d error(s), %d warning(s) in %d rules",
			source, nerr, nwarn, len(located))
	}
	fmt.Fprintf(os.Stderr, "lint-rules: %s: %d rules clean (%d warning(s))\n", source, len(located), nwarn)
	return nil
}

// coalesceCmd reads a syslog archive and prints the machine-level error
// events the coalescer reconstructs: the operations view of the error log.
func coalesceCmd(args []string) error {
	fs := flag.NewFlagSet("coalesce", flag.ContinueOnError)
	var (
		sysPath  = fs.String("syslog", "", "path to the syslog archive")
		temporal = fs.Duration("temporal", coalesce.DefaultTemporalWindow, "tupling window")
		spatial  = fs.Duration("spatial", coalesce.DefaultSpatialWindow, "spatial merge window")
		top      = fs.Int("top", 25, "print the N largest machine-level events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sysPath == "" {
		return fmt.Errorf("coalesce: -syslog is required")
	}
	f, err := os.Open(*sysPath)
	if err != nil {
		return err
	}
	defer f.Close()

	cls := taxonomy.Default()
	sc := syslogx.NewScanner(f)
	var events []logdiver.Event
	for sc.Scan() {
		line := sc.Line()
		cat, sev := cls.Classify(line.Message)
		if cat == taxonomy.Unclassified {
			continue
		}
		events = append(events, logdiver.Event{
			Time: line.Time, Node: -1, Cname: line.Host,
			Category: cat, Severity: sev, Message: line.Message,
		})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, groups, stats := coalesce.Pipeline(events, *temporal, *spatial)
	fmt.Printf("%s\n\n", stats)
	// Largest groups by raw-event volume first.
	sort.Slice(groups, func(i, j int) bool { return groups[i].Events > groups[j].Events })
	n := *top
	if n > len(groups) {
		n = len(groups)
	}
	fmt.Printf("%-20s %-16s %-6s %8s %10s\n", "start", "category", "sev", "events", "span")
	for _, g := range groups[:n] {
		fmt.Printf("%-20s %-16s %-6s %8d %10s\n",
			g.Start.Format("2006-01-02 15:04:05"), g.Category, g.Severity,
			g.Events, g.End.Sub(g.Start).Round(time.Second))
	}
	return nil
}

// availCmd reconstructs node availability from a syslog archive: failures,
// repair times and aggregate machine availability.
func availCmd(args []string) error {
	fs := flag.NewFlagSet("avail", flag.ContinueOnError)
	var (
		sysPath = fs.String("syslog", "", "path to the syslog archive")
		mc      = fs.String("machine", "bluewaters", "machine model: bluewaters or small")
		topN    = fs.Int("top", 5, "print the N longest outages")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sysPath == "" {
		return fmt.Errorf("avail: -syslog is required")
	}
	var cfg logdiver.MachineConfig
	switch *mc {
	case "bluewaters":
		cfg = logdiver.BlueWaters()
	case "small":
		cfg = logdiver.SmallMachine()
	default:
		return fmt.Errorf("unknown machine %q", *mc)
	}
	top, err := logdiver.NewTopology(cfg)
	if err != nil {
		return err
	}
	f, err := os.Open(*sysPath)
	if err != nil {
		return err
	}
	defer f.Close()

	cls := taxonomy.Default()
	sc := syslogx.NewScanner(f)
	var events []logdiver.Event
	var first, last time.Time
	for sc.Scan() {
		line := sc.Line()
		cat, sev := cls.Classify(line.Message)
		if cat == taxonomy.Unclassified {
			continue
		}
		node := logdiver.NodeID(-1)
		if id, err := top.LookupString(line.Host); err == nil {
			node = id
		}
		events = append(events, logdiver.Event{
			Time: line.Time, Node: node, Cname: line.Host,
			Category: cat, Severity: sev, Message: line.Message,
		})
		if first.IsZero() || line.Time.Before(first) {
			first = line.Time
		}
		if line.Time.After(last) {
			last = line.Time
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("avail: no classifiable events in %s", *sysPath)
	}
	downs, err := avail.Reconstruct(events, last)
	if err != nil {
		return err
	}
	sum, err := avail.Summarize(downs, top.NumXE()+top.NumXK(), first, last)
	if err != nil {
		return err
	}
	fmt.Printf("window: %s to %s (%.1f days)\n", first.Format("2006-01-02"),
		last.Format("2006-01-02"), sum.WindowHours/24)
	fmt.Printf("node failures: %d (%d unresolved), %d distinct nodes\n",
		sum.Failures, sum.OpenFailures, sum.DistinctNodes)
	fmt.Printf("downtime: %.1f node-hours; MTTR %.2f h; availability %.4f%%\n",
		sum.DowntimeHours, sum.MTTRHours, 100*sum.Availability)
	for _, c := range avail.CausesOf(downs) {
		fmt.Printf("  cause %-16s %d\n", c.Cause, c.Count)
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i].Duration() > downs[j].Duration() })
	n := *topN
	if n > len(downs) {
		n = len(downs)
	}
	fmt.Printf("longest outages:\n")
	for _, d := range downs[:n] {
		open := ""
		if d.Open {
			open = " (unresolved)"
		}
		node, err := top.Node(d.Node)
		cname := "?"
		if err == nil {
			cname = node.Cname.String()
		}
		fmt.Printf("  %-14s %-16s %s for %s%s\n", cname, d.Cause,
			d.From.Format("2006-01-02 15:04"), d.Duration().Round(time.Minute), open)
	}
	return nil
}

// mutateCmd deterministically corrupts a log archive with the seeded
// operators of internal/mutate and writes the mutated archive plus an
// optional JSON manifest of every injected mutation.
func mutateCmd(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "archive to corrupt")
		out      = fs.String("out", "", "where to write the mutated archive")
		manifest = fs.String("manifest", "", "optional path for the JSON mutation manifest")
		seed     = fs.Int64("seed", 1, "mutation seed (same seed, same input: identical output)")
		budget   = fs.Float64("budget", mutate.DefaultBudget, "per-operator corruption budget as a fraction of input lines")
		ops      = fs.String("ops", "", "comma-separated operator subset (default: all): "+opNames())
		maxPer   = fs.Int("max-per-op", 0, "hard cap on mutations per operator (0 = budget only)")
		block    = fs.Int("block-lines", mutate.DefaultBlockLines, "block size for duplicate/reorder operators")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("mutate: -in and -out are required")
	}
	cfg := mutate.Config{Seed: *seed, Budget: *budget, MaxPerOp: *maxPer, BlockLines: *block}
	if *ops != "" {
		for _, name := range strings.Split(*ops, ",") {
			o, ok := mutate.OpFromString(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("mutate: unknown operator %q (want %s)", name, opNames())
			}
			cfg.Ops = append(cfg.Ops, o)
		}
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	mutated, m := mutate.Apply(data, cfg)
	if err := os.WriteFile(*out, mutated, 0o644); err != nil {
		return err
	}
	if *manifest != "" {
		f, err := os.Create(*manifest)
		if err != nil {
			return err
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mutated %s: %d -> %d lines, %d mutations (%d corrupting) seed=%d\n",
		*in, m.InputLines, m.OutputLines, len(m.Mutations), len(m.Corrupting()), m.Seed)
	return nil
}

// opNames renders the mutate operator vocabulary for flag help and errors.
func opNames() string {
	var names []string
	for _, o := range mutate.AllOps() {
		names = append(names, o.String())
	}
	return strings.Join(names, ",")
}

// generate delegates to the tracegen implementation by re-execing its logic
// inline (same flags).
func generate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	var (
		days     = fs.Int("days", 30, "production days to synthesize")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "archive", "output directory")
		par      = fs.Int("parallelism", 0, "log-emission worker count (0 = GOMAXPROCS, 1 = sequential)")
		machine  = fs.String("machine", "bluewaters", "machine model: bluewaters or small (small rescales the workload too)")
		start    = fs.String("start", "", "first production day (YYYY-MM-DD; default 2013-04-01)")
		fleetK   = fs.Int("fleet", 0, "generate a K-machine fleet: one small-machine archive dir per shard plus a ready-to-run fleet.conf under -out")
		fleetWin = fs.Int("fleet-window", 0, "with -fleet: append production window W to the existing shard archives instead of recreating them")
		fleetOne = fs.String("fleet-only", "", "with -fleet: write only the named machine's data (grow one shard of an existing fleet)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetK > 0 {
		return generateFleet(*fleetK, *days, *seed, *fleetWin, *fleetOne, *out, *par)
	}
	if *fleetWin != 0 || *fleetOne != "" {
		return fmt.Errorf("generate: -fleet-window and -fleet-only require -fleet K")
	}
	var cfg logdiver.GeneratorConfig
	switch *machine {
	case "bluewaters":
		cfg = logdiver.ScaledGeneratorConfig(*days)
	case "small":
		cfg = logdiver.SmallGeneratorConfig(*days)
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	cfg.Seed = *seed
	cfg.Parallelism = *par
	if *start != "" {
		at, err := time.Parse("2006-01-02", *start)
		if err != nil {
			return fmt.Errorf("generate: bad -start: %w", err)
		}
		cfg.Start = at
	}
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(*out + "/" + name)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("accounting.log", func(w io.Writer) error { return ds.WriteAccounting(w) }); err != nil {
		return err
	}
	if err := write("apsys.log", func(w io.Writer) error { return ds.WriteApsys(w) }); err != nil {
		return err
	}
	if err := write("syslog.log", func(w io.Writer) error { return ds.WriteErrorLog(w) }); err != nil {
		return err
	}
	if err := write("truth.jsonl", func(w io.Writer) error { return ds.WriteTruth(w) }); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d jobs / %d runs / %d events to %s\n",
		len(ds.Jobs), len(ds.Runs), len(ds.Events), *out)
	return nil
}
