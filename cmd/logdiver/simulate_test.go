package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimulateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	policyPath := filepath.Join(dir, "policies.conf")
	policies := `
[policy daly]
checkpoint = daly
checkpoint-cost = 7m
restart-cost = 12m
retry-limit = 2
retry-backoff = 5m

[policy detect]
detect-fraction = 0.8
`
	if err := os.WriteFile(policyPath, []byte(policies), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCapture(t, []string{
		"simulate",
		"-accounting", filepath.Join(dir, "accounting.log"),
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
		"-policy", policyPath,
		"-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"W1", "W2", "W3",
		"Counterfactual outcome shift",
		"Node-hour economics",
		"Recovery by scale bucket",
		"measured-baseline", "daly", "detect",
		"RECOVERED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// The md and csv formats render without error.
	for _, format := range []string{"md", "csv"} {
		if _, err := runCapture(t, []string{
			"simulate",
			"-apsys", filepath.Join(dir, "apsys.log"),
			"-syslog", filepath.Join(dir, "syslog.log"),
			"-machine", "small",
			"-policy", policyPath,
			"-format", format,
		}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

// TestSimulateDeterministicJSON pins the CLI-level reproducibility claim:
// same archive and seed emit byte-identical JSON, at any parallelism.
func TestSimulateDeterministicJSON(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	args := func(par string) []string {
		return []string{
			"simulate",
			"-apsys", filepath.Join(dir, "apsys.log"),
			"-syslog", filepath.Join(dir, "syslog.log"),
			"-machine", "small",
			"-checkpoint", "daly",
			"-checkpoint-cost", "7m",
			"-restart-cost", "12m",
			"-retry-limit", "1",
			"-seed", "11",
			"-parallelism", par,
			"-json",
		}
	}
	out1, err := runCapture(t, args("1"))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := runCapture(t, args("4"))
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Error("same seed at parallelism 1 and 4 produced different JSON")
	}
	if !strings.Contains(out1, `"seed": 11`) {
		t.Error("JSON report missing seed")
	}
}

func TestSimulateInlinePolicy(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	out, err := runCapture(t, []string{
		"simulate",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
		"-name", "mine",
		"-retry-limit", "2",
		"-retry-backoff", "5m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mine") {
		t.Error("inline policy name missing from tables")
	}

	// No policy flags at all: the default policy set runs.
	out, err = runCapture(t, []string{
		"simulate",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"daly-checkpoint", "gpu-detect"} {
		if !strings.Contains(out, want) {
			t.Errorf("default policy set missing %q", want)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	apsys := filepath.Join(dir, "apsys.log")

	if err := run([]string{"simulate"}); err == nil {
		t.Error("simulate without -apsys accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "bogus"}); err == nil {
		t.Error("bogus machine accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "small",
		"-policy", "/does/not/exist"}); err == nil {
		t.Error("missing policy file accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "small",
		"-policy", apsys, "-retry-limit", "2"}); err == nil {
		t.Error("-policy plus inline flags accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "small",
		"-checkpoint", "sometimes"}); err == nil {
		t.Error("bad checkpoint kind accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "small",
		"-detect-fraction", "1.5"}); err == nil {
		t.Error("out-of-range detect fraction accepted")
	}
	if err := run([]string{"simulate", "-apsys", apsys, "-machine", "small",
		"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
