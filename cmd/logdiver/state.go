package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"logdiver/internal/persist"
)

// stateCmd inspects and verifies a logdiverd state file: it runs the full
// Load validation (magic, version, length, checksum, payload decode) and
// prints what the daemon would restore — epoch, configuration fingerprint,
// ingest history, tail offsets, pipeline population. Any validation
// failure is reported with the same typed error the daemon would act on,
// and makes the command exit nonzero, so `logdiver state` doubles as a
// pre-flight check before restarting a production daemon.
func stateCmd(args []string) error {
	fs := flag.NewFlagSet("state", flag.ContinueOnError)
	var (
		file    = fs.String("file", "", "state file to inspect")
		dir     = fs.String("state-dir", "", "daemon state directory (inspects its "+persist.StateFile+")")
		jsonOut = fs.Bool("json", false, "emit the inspection as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *file
	if path == "" && *dir != "" {
		path = filepath.Join(*dir, persist.StateFile)
	}
	if path == "" {
		return fmt.Errorf("state: -file or -state-dir is required")
	}

	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	st, err := persist.Load(path)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}

	sy := st.Syncer
	p := sy.Pipeline
	view := stateView{
		Path:        path,
		SizeBytes:   fi.Size(),
		Version:     persist.Version,
		SavedAt:     st.SavedAt.UTC().Format(time.RFC3339),
		Epoch:       st.Epoch,
		Fingerprint: st.Fingerprint,
		Ingest: ingestView{
			Rounds:          sy.Ingest.Rounds,
			AccountingLines: sy.Ingest.AccountingLines,
			ApsysLines:      sy.Ingest.ApsysLines,
			SyslogLines:     sy.Ingest.SyslogLines,
		},
		Pipeline: pipelineView{
			Jobs:       len(p.Jobs),
			OpenRuns:   len(p.Alps.Open),
			Done:       len(p.Alps.Done),
			Attributed: len(p.Attr),
			Events:     len(p.Events),
		},
	}
	for i, name := range []string{"accounting", "apsys", "syslog"} {
		f := sy.Tailer.Files[i]
		view.Tailer = append(view.Tailer, tailView{
			Archive: name, Offset: f.Offset, CarryBytes: len(f.Carry), Inode: f.Inode,
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(view)
	}
	fmt.Printf("state file: %s (%d bytes)\n", view.Path, view.SizeBytes)
	fmt.Printf("format:     version %d, checksum ok\n", view.Version)
	fmt.Printf("saved:      %s\n", view.SavedAt)
	fmt.Printf("epoch:      %d\n", view.Epoch)
	fmt.Printf("config:     machine=%s nodes=%d parse-mode=%s rules=%s tz=%s\n",
		st.Fingerprint.Machine, st.Fingerprint.Nodes, st.Fingerprint.ParseMode,
		st.Fingerprint.Rules, st.Fingerprint.TimeZone)
	fmt.Printf("ingest:     %d rounds; lines: %d accounting, %d apsys, %d syslog\n",
		view.Ingest.Rounds, view.Ingest.AccountingLines, view.Ingest.ApsysLines, view.Ingest.SyslogLines)
	for _, tv := range view.Tailer {
		fmt.Printf("tail:       %-10s offset=%d carry=%dB inode=%d\n",
			tv.Archive, tv.Offset, tv.CarryBytes, tv.Inode)
	}
	fmt.Printf("pipeline:   %d jobs, %d open runs, %d completed (%d attributed), %d events\n",
		view.Pipeline.Jobs, view.Pipeline.OpenRuns, view.Pipeline.Done,
		view.Pipeline.Attributed, view.Pipeline.Events)
	return nil
}

// stateView is the JSON shape of `logdiver state -json`.
type stateView struct {
	Path        string              `json:"path"`
	SizeBytes   int64               `json:"size_bytes"`
	Version     uint32              `json:"version"`
	SavedAt     string              `json:"saved_at"`
	Epoch       uint64              `json:"epoch"`
	Fingerprint persist.Fingerprint `json:"fingerprint"`
	Ingest      ingestView          `json:"ingest"`
	Tailer      []tailView          `json:"tailer"`
	Pipeline    pipelineView        `json:"pipeline"`
}

type ingestView struct {
	Rounds          int `json:"rounds"`
	AccountingLines int `json:"accounting_lines"`
	ApsysLines      int `json:"apsys_lines"`
	SyslogLines     int `json:"syslog_lines"`
}

type tailView struct {
	Archive    string `json:"archive"`
	Offset     int64  `json:"offset"`
	CarryBytes int    `json:"carry_bytes"`
	Inode      uint64 `json:"inode"`
}

type pipelineView struct {
	Jobs       int `json:"jobs"`
	OpenRuns   int `json:"open_runs"`
	Done       int `json:"completed_runs"`
	Attributed int `json:"attributed_runs"`
	Events     int `json:"events"`
}
