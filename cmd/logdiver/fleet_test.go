package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logdiver/internal/fleet"
)

// runCapture runs the CLI with stdout redirected to a buffer file.
func runCapture(t *testing.T, args []string) (string, error) {
	t.Helper()
	outPath := filepath.Join(t.TempDir(), "out.txt")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	runErr := run(args)
	os.Stdout = origStdout
	outFile.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestGenerateFleetLayout(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"generate", "-fleet", "2", "-days", "1", "-seed", "9", "-out", out}); err != nil {
		t.Fatal(err)
	}

	cfg, err := fleet.LoadConfig(filepath.Join(out, "fleet.conf"))
	if err != nil {
		t.Fatalf("fleet.conf unusable: %v", err)
	}
	if len(cfg.Shards) != 2 {
		t.Fatalf("fleet.conf has %d shards, want 2", len(cfg.Shards))
	}
	for _, sc := range cfg.Shards {
		// LoadConfig resolves the relative archive-dir against the config
		// file's directory, so the shard dirs must exist with all archives.
		for _, name := range []string{"accounting.log", "apsys.log", "syslog.log", "truth.jsonl"} {
			info, err := os.Stat(filepath.Join(sc.ArchiveDir, name))
			if err != nil {
				t.Fatalf("shard %s missing %s: %v", sc.Name, name, err)
			}
			if info.Size() == 0 {
				t.Errorf("shard %s: empty %s", sc.Name, name)
			}
		}
		if sc.Machine != fleet.MachineSmall {
			t.Errorf("shard %s machine %q, want small", sc.Name, sc.Machine)
		}
	}
}

func TestGenerateFleetWindowAppend(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"generate", "-fleet", "2", "-days", "1", "-seed", "9", "-out", out}); err != nil {
		t.Fatal(err)
	}
	size := func(machine string) int64 {
		info, err := os.Stat(filepath.Join(out, machine, "accounting.log"))
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}
	s0, s1 := size("m00"), size("m01")

	// Growing one shard by a window touches only that shard's archives.
	if err := run([]string{"generate", "-fleet", "2", "-days", "1", "-seed", "9", "-out", out,
		"-fleet-window", "1", "-fleet-only", "m01"}); err != nil {
		t.Fatal(err)
	}
	if got := size("m00"); got != s0 {
		t.Errorf("m00 accounting grew from %d to %d despite -fleet-only m01", s0, got)
	}
	if got := size("m01"); got <= s1 {
		t.Errorf("m01 accounting did not grow: %d -> %d", s1, got)
	}
}

func TestAnalyzeFleetConfig(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"generate", "-fleet", "2", "-days", "1", "-seed", "9", "-out", out}); err != nil {
		t.Fatal(err)
	}

	text, err := runCapture(t, []string{"analyze", "-fleet-config", filepath.Join(out, "fleet.conf"), "-format", "md"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"F1", "Fleet shards", "m00", "m01", "F2", "Fleet outcome breakdown", "F3", "2 machines merged"} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet report missing %q", want)
		}
	}

	// All three formats render.
	for _, format := range []string{"ascii", "csv"} {
		if _, err := runCapture(t, []string{"analyze", "-fleet-config", filepath.Join(out, "fleet.conf"), "-format", format}); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
}

func TestFleetFlagErrors(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"generate", "-fleet-window", "1", "-out", out}); err == nil {
		t.Error("-fleet-window without -fleet accepted")
	}
	if err := run([]string{"generate", "-fleet-only", "m00", "-out", out}); err == nil {
		t.Error("-fleet-only without -fleet accepted")
	}
	if err := run([]string{"generate", "-fleet", "2", "-days", "1", "-out", out, "-fleet-only", "nope"}); err == nil {
		t.Error("-fleet-only with unknown machine accepted")
	}
	if err := run([]string{"analyze", "-fleet-config", "conf", "-apsys", "x"}); err == nil {
		t.Error("analyze -fleet-config with -apsys accepted")
	}
	if err := run([]string{"analyze", "-fleet-config", filepath.Join(out, "missing.conf")}); err == nil {
		t.Error("analyze with missing fleet config accepted")
	}
}
