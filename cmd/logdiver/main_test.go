package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logdiver"
)

// writeArchive generates a tiny dataset and writes the four archive files
// into dir.
func writeArchive(t *testing.T, dir string) {
	t.Helper()
	cfg := logdiver.ScaledGeneratorConfig(1)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Seed = 21
	cfg.Workload.JobsPerDay = 150
	cfg.Workload.XECapabilitySizes = []int{256}
	cfg.Workload.XKCapabilitySizes = []int{64}
	cfg.Workload.SmallSizeMax = 64
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("accounting.log", func(f *os.File) error { return ds.WriteAccounting(f) })
	write("apsys.log", func(f *os.File) error { return ds.WriteApsys(f) })
	write("syslog.log", func(f *os.File) error { return ds.WriteErrorLog(f) })
	write("truth.jsonl", func(f *os.File) error { return ds.WriteTruth(f) })
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"analyze"}); err == nil {
		t.Error("analyze without -apsys accepted")
	}
	if err := run([]string{"analyze", "-apsys", "x", "-machine", "bogus"}); err == nil {
		t.Error("bogus machine accepted")
	}
	if err := run([]string{"analyze", "-apsys", "/does/not/exist", "-machine", "small"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)

	// Redirect stdout to a file to keep test output clean and capture it.
	outPath := filepath.Join(dir, "out.txt")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	defer func() { os.Stdout = origStdout }()

	err = run([]string{
		"analyze",
		"-accounting", filepath.Join(dir, "accounting.log"),
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-truth", filepath.Join(dir, "truth.jsonl"),
		"-machine", "small",
		"-format", "md",
	})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"E1", "E2", "E9", "A2", "1.53%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAnalyzeFormats(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	for _, format := range []string{"ascii", "csv"} {
		outFile, err := os.Create(filepath.Join(dir, "out-"+format))
		if err != nil {
			t.Fatal(err)
		}
		origStdout := os.Stdout
		os.Stdout = outFile
		err = run([]string{
			"analyze",
			"-apsys", filepath.Join(dir, "apsys.log"),
			"-syslog", filepath.Join(dir, "syslog.log"),
			"-machine", "small",
			"-format", format,
		})
		os.Stdout = origStdout
		outFile.Close()
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
	// Unknown format is rejected.
	err := run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-machine", "small",
		"-format", "xml",
	})
	if err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCoalesceSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	outFile, err := os.Create(filepath.Join(dir, "coalesce.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{"coalesce", "-syslog", filepath.Join(dir, "syslog.log"), "-top", "5"})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "coalesce.out"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "reduction") {
		t.Errorf("missing stats line:\n%s", data)
	}
	if err := run([]string{"coalesce"}); err == nil {
		t.Error("coalesce without -syslog accepted")
	}
	if err := run([]string{"coalesce", "-syslog", "/does/not/exist"}); err == nil {
		t.Error("missing syslog file accepted")
	}
}

func TestAnalyzeWithRuleFile(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	// A minimal rule file that only understands heartbeat faults.
	rules := "hb NODE_HEARTBEAT CRIT (?i)heartbeat fault\n"
	rulePath := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rulePath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile, err := os.Create(filepath.Join(dir, "rules.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
		"-rules", rulePath,
	})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A broken rule file is rejected.
	if err := os.WriteFile(rulePath, []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-machine", "small",
		"-rules", rulePath,
	})
	if err == nil {
		t.Error("broken rule file accepted")
	}
}

func TestAvailSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	outFile, err := os.Create(filepath.Join(dir, "avail.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{"avail", "-syslog", filepath.Join(dir, "syslog.log"), "-machine", "small"})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "avail.out"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"node failures", "availability", "longest outages"} {
		if !strings.Contains(out, want) {
			t.Errorf("avail output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"avail"}); err == nil {
		t.Error("avail without -syslog accepted")
	}
}

func TestGenerateSubcommand(t *testing.T) {
	dir := t.TempDir()
	// The generate subcommand always uses the full topology; keep it to a
	// fraction of a day... it does not support fractional days, so use a
	// single day and accept ~2s of work.
	if testing.Short() {
		t.Skip("full-topology generation; skipped in -short")
	}
	err := run([]string{"generate", "-days", "1", "-seed", "9", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"accounting.log", "apsys.log", "syslog.log", "truth.jsonl"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// captureStdout redirects os.Stdout into a file for the duration of fn and
// returns what was written.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = f
	defer func() { os.Stdout = orig }()
	fn()
	os.Stdout = orig
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

const shadowedRules = "../../internal/rulecheck/testdata/shadowed.rules"

func TestLintRulesBuiltinClean(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"lint-rules"}); err != nil {
			t.Errorf("built-in rules failed lint: %v", err)
		}
	})
	if strings.TrimSpace(out) != "" {
		t.Errorf("built-in rules produced findings:\n%s", out)
	}
}

func TestLintRulesShadowedFile(t *testing.T) {
	var err error
	out := captureStdout(t, func() {
		err = run([]string{"lint-rules", "-rules", shadowedRules})
	})
	if err == nil {
		t.Fatal("shadowed rule file passed lint")
	}
	// The deliberately shadowed rule must be reported with the shadowing
	// rule's name and both line numbers.
	for _, want := range []string{
		`rule "mce-dup" (line 4)`,
		`earlier rule "mce-wide" (line 3)`,
		"[shadow-structural]",
		"[empty-match]",
		"[dup-name]",
		"[severity-mismatch]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lint output missing %q:\n%s", want, out)
		}
	}
}

func TestLintRulesJSON(t *testing.T) {
	var err error
	out := captureStdout(t, func() {
		err = run([]string{"lint-rules", "-json", "-rules", shadowedRules})
	})
	if err == nil {
		t.Fatal("shadowed rule file passed lint")
	}
	var findings []struct {
		Check    string `json:"check"`
		Severity string `json:"severity"`
		Rule     string `json:"rule"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if jerr := json.Unmarshal([]byte(out), &findings); jerr != nil {
		t.Fatalf("invalid JSON: %v\n%s", jerr, out)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Check] = true
		if f.Severity != "error" && f.Severity != "warn" {
			t.Errorf("finding %q has severity %q", f.Check, f.Severity)
		}
	}
	for _, check := range []string{"shadow-structural", "empty-match", "dup-name"} {
		if !seen[check] {
			t.Errorf("JSON output missing check %q", check)
		}
	}

	// The clean built-in set must encode as [], not null.
	out = captureStdout(t, func() {
		if err := run([]string{"lint-rules", "-json"}); err != nil {
			t.Errorf("built-in rules failed lint: %v", err)
		}
	})
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean set encoded as %q, want []", strings.TrimSpace(out))
	}
}

func TestMutateSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	in := filepath.Join(dir, "syslog.log")
	out := filepath.Join(dir, "syslog.corrupt.log")
	manifest := filepath.Join(dir, "manifest.json")
	err := run([]string{
		"mutate", "-in", in, "-out", out, "-manifest", manifest,
		"-seed", "5", "-budget", "0.01", "-ops", "truncate,encoding", "-max-per-op", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) == string(mutated) {
		t.Error("mutate left the archive unchanged")
	}
	mf, err := os.Open(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	var m struct {
		Seed      int64 `json:"seed"`
		Mutations []struct {
			Op string `json:"op"`
		} `json:"mutations"`
	}
	if err := json.NewDecoder(mf).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Seed != 5 {
		t.Errorf("manifest seed = %d, want 5", m.Seed)
	}
	if len(m.Mutations) == 0 || len(m.Mutations) > 8 {
		t.Errorf("%d mutations recorded, want 1..8 (two ops, max 4 each)", len(m.Mutations))
	}
	for _, mu := range m.Mutations {
		if mu.Op != "truncate" && mu.Op != "encoding" {
			t.Errorf("operator %q ran outside the -ops subset", mu.Op)
		}
	}

	// Same seed, same input: byte-identical output.
	out2 := filepath.Join(dir, "syslog.corrupt2.log")
	err = run([]string{
		"mutate", "-in", in, "-out", out2,
		"-seed", "5", "-budget", "0.01", "-ops", "truncate,encoding", "-max-per-op", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	mutated2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(mutated) != string(mutated2) {
		t.Error("same seed produced different mutated archives")
	}

	// Flag validation.
	if err := run([]string{"mutate", "-in", in}); err == nil {
		t.Error("mutate without -out accepted")
	}
	if err := run([]string{"mutate", "-in", in, "-out", out, "-ops", "bogus"}); err == nil {
		t.Error("unknown operator accepted")
	}
	if err := run([]string{"mutate", "-in", "/does/not/exist", "-out", out}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestAnalyzeParseModeFlag(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	in := filepath.Join(dir, "accounting.log")
	corrupt := filepath.Join(dir, "accounting.corrupt.log")
	if err := run([]string{
		"mutate", "-in", in, "-out", corrupt,
		"-seed", "3", "-ops", "encoding", "-max-per-op", "2",
	}); err != nil {
		t.Fatal(err)
	}
	// The generated syslog archive carries intentional noise lines, so the
	// strict-mode cases run without it (only clean accounting + apsys).
	args := func(acc, mode string) []string {
		return []string{
			"analyze",
			"-accounting", acc,
			"-apsys", filepath.Join(dir, "apsys.log"),
			"-machine", "small",
			"-parse-mode", mode,
		}
	}
	// Strict mode fails on the corrupted archive with a line-numbered error.
	err := run(args(corrupt, "strict"))
	if err == nil {
		t.Fatal("strict mode accepted a corrupted accounting archive")
	}
	var perr *logdiver.ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("strict error %v is not a *ParseError", err)
	}
	if perr.Archive != "accounting" || perr.Line < 1 {
		t.Errorf("strict error names %q line %d, want accounting line >= 1", perr.Archive, perr.Line)
	}
	// Lenient mode analyzes the same corrupted archive successfully.
	_ = captureStdout(t, func() {
		if err := run(args(corrupt, "lenient")); err != nil {
			t.Errorf("lenient mode failed on corrupted archive: %v", err)
		}
	})
	// Strict mode passes on the clean archive.
	_ = captureStdout(t, func() {
		if err := run(args(in, "strict")); err != nil {
			t.Errorf("strict mode failed on clean archive: %v", err)
		}
	})
	// Unknown mode is rejected.
	if err := run(args(in, "bogus")); err == nil {
		t.Error("unknown parse mode accepted")
	}
}

func TestAnalyzeValidatesRules(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	args := []string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
		"-rules", shadowedRules,
	}
	if err := run(args); err == nil || !strings.Contains(err.Error(), "rulecheck") {
		t.Errorf("analyze accepted a rule set with error findings (err=%v)", err)
	}
	// The escape hatch disables the gate.
	_ = captureStdout(t, func() {
		if err := run(append(args, "-validate-rules=false")); err != nil {
			t.Errorf("analyze with -validate-rules=false failed: %v", err)
		}
	})
}
