package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logdiver"
)

// writeArchive generates a tiny dataset and writes the four archive files
// into dir.
func writeArchive(t *testing.T, dir string) {
	t.Helper()
	cfg := logdiver.ScaledGeneratorConfig(1)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Seed = 21
	cfg.Workload.JobsPerDay = 150
	cfg.Workload.XECapabilitySizes = []int{256}
	cfg.Workload.XKCapabilitySizes = []int{64}
	cfg.Workload.SmallSizeMax = 64
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("accounting.log", func(f *os.File) error { return ds.WriteAccounting(f) })
	write("apsys.log", func(f *os.File) error { return ds.WriteApsys(f) })
	write("syslog.log", func(f *os.File) error { return ds.WriteErrorLog(f) })
	write("truth.jsonl", func(f *os.File) error { return ds.WriteTruth(f) })
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"analyze"}); err == nil {
		t.Error("analyze without -apsys accepted")
	}
	if err := run([]string{"analyze", "-apsys", "x", "-machine", "bogus"}); err == nil {
		t.Error("bogus machine accepted")
	}
	if err := run([]string{"analyze", "-apsys", "/does/not/exist", "-machine", "small"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)

	// Redirect stdout to a file to keep test output clean and capture it.
	outPath := filepath.Join(dir, "out.txt")
	outFile, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	defer func() { os.Stdout = origStdout }()

	err = run([]string{
		"analyze",
		"-accounting", filepath.Join(dir, "accounting.log"),
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-truth", filepath.Join(dir, "truth.jsonl"),
		"-machine", "small",
		"-format", "md",
	})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"E1", "E2", "E9", "A2", "1.53%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAnalyzeFormats(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	for _, format := range []string{"ascii", "csv"} {
		outFile, err := os.Create(filepath.Join(dir, "out-"+format))
		if err != nil {
			t.Fatal(err)
		}
		origStdout := os.Stdout
		os.Stdout = outFile
		err = run([]string{
			"analyze",
			"-apsys", filepath.Join(dir, "apsys.log"),
			"-syslog", filepath.Join(dir, "syslog.log"),
			"-machine", "small",
			"-format", format,
		})
		os.Stdout = origStdout
		outFile.Close()
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
	// Unknown format is rejected.
	err := run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-machine", "small",
		"-format", "xml",
	})
	if err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCoalesceSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	outFile, err := os.Create(filepath.Join(dir, "coalesce.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{"coalesce", "-syslog", filepath.Join(dir, "syslog.log"), "-top", "5"})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "coalesce.out"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "reduction") {
		t.Errorf("missing stats line:\n%s", data)
	}
	if err := run([]string{"coalesce"}); err == nil {
		t.Error("coalesce without -syslog accepted")
	}
	if err := run([]string{"coalesce", "-syslog", "/does/not/exist"}); err == nil {
		t.Error("missing syslog file accepted")
	}
}

func TestAnalyzeWithRuleFile(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	// A minimal rule file that only understands heartbeat faults.
	rules := "hb NODE_HEARTBEAT CRIT (?i)heartbeat fault\n"
	rulePath := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rulePath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile, err := os.Create(filepath.Join(dir, "rules.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-syslog", filepath.Join(dir, "syslog.log"),
		"-machine", "small",
		"-rules", rulePath,
	})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A broken rule file is rejected.
	if err := os.WriteFile(rulePath, []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"analyze",
		"-apsys", filepath.Join(dir, "apsys.log"),
		"-machine", "small",
		"-rules", rulePath,
	})
	if err == nil {
		t.Error("broken rule file accepted")
	}
}

func TestAvailSubcommand(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir)
	outFile, err := os.Create(filepath.Join(dir, "avail.out"))
	if err != nil {
		t.Fatal(err)
	}
	origStdout := os.Stdout
	os.Stdout = outFile
	err = run([]string{"avail", "-syslog", filepath.Join(dir, "syslog.log"), "-machine", "small"})
	os.Stdout = origStdout
	outFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "avail.out"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"node failures", "availability", "longest outages"} {
		if !strings.Contains(out, want) {
			t.Errorf("avail output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"avail"}); err == nil {
		t.Error("avail without -syslog accepted")
	}
}

func TestGenerateSubcommand(t *testing.T) {
	dir := t.TempDir()
	// The generate subcommand always uses the full topology; keep it to a
	// fraction of a day... it does not support fractional days, so use a
	// single day and accept ~2s of work.
	if testing.Short() {
		t.Skip("full-topology generation; skipped in -short")
	}
	err := run([]string{"generate", "-days", "1", "-seed", "9", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"accounting.log", "apsys.log", "syslog.log", "truth.jsonl"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
