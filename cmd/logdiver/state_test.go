package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logdiver/internal/core"
	"logdiver/internal/persist"
	"logdiver/internal/store"
)

// writeStateFile saves a small but well-formed daemon state file and
// returns its path.
func writeStateFile(t *testing.T, dir string) string {
	t.Helper()
	st := &persist.State{
		SavedAt: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Epoch:   7,
		Fingerprint: persist.Fingerprint{
			Machine: "small", Nodes: 64, ParseMode: "lenient",
			Rules: persist.RulesBuiltin, TimeZone: "UTC",
		},
		Syncer: &store.SyncerState{
			Pipeline: &core.IncrementalState{},
			Tailer: store.TailerState{Files: [3]store.TailFileState{
				{Offset: 1234, Inode: 42, InodeOK: true},
				{Offset: 56},
				{Offset: 78, Carry: []byte("partial")},
			}},
			Ingest: store.IngestStats{Rounds: 3, AccountingLines: 10, ApsysLines: 20, SyslogLines: 30},
		},
	}
	path := filepath.Join(dir, persist.StateFile)
	if err := persist.Save(path, st); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStateSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := writeStateFile(t, dir)

	out := captureStdout(t, func() {
		if err := run([]string{"state", "-file", path}); err != nil {
			t.Errorf("state on a valid file failed: %v", err)
		}
	})
	for _, want := range []string{
		"epoch:      7",
		"machine=small",
		"parse-mode=lenient",
		"3 rounds",
		"offset=1234",
		"carry=7B",
		"checksum ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("state output missing %q:\n%s", want, out)
		}
	}

	// -state-dir resolves to the directory's state.ldv.
	dirOut := captureStdout(t, func() {
		if err := run([]string{"state", "-state-dir", dir}); err != nil {
			t.Errorf("state -state-dir failed: %v", err)
		}
	})
	if dirOut != out {
		t.Error("-state-dir output differs from -file output for the same file")
	}
}

func TestStateSubcommandJSON(t *testing.T) {
	dir := t.TempDir()
	path := writeStateFile(t, dir)
	out := captureStdout(t, func() {
		if err := run([]string{"state", "-file", path, "-json"}); err != nil {
			t.Errorf("state -json failed: %v", err)
		}
	})
	var view struct {
		Epoch       uint64 `json:"epoch"`
		Fingerprint struct {
			Machine string `json:"machine"`
		} `json:"fingerprint"`
		Ingest struct {
			Rounds int `json:"rounds"`
		} `json:"ingest"`
		Tailer []struct {
			Archive string `json:"archive"`
			Offset  int64  `json:"offset"`
		} `json:"tailer"`
	}
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if view.Epoch != 7 || view.Fingerprint.Machine != "small" || view.Ingest.Rounds != 3 {
		t.Errorf("decoded view = %+v, want epoch 7 / machine small / 3 rounds", view)
	}
	if len(view.Tailer) != 3 || view.Tailer[0].Archive != "accounting" || view.Tailer[0].Offset != 1234 {
		t.Errorf("tailer view = %+v", view.Tailer)
	}
}

func TestStateSubcommandErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"state"}); err == nil {
		t.Error("state without -file or -state-dir accepted")
	}
	if err := run([]string{"state", "-file", filepath.Join(dir, "missing.ldv")}); err == nil {
		t.Error("missing state file accepted")
	}
	// A corrupted file is rejected with the persist layer's reason.
	bad := filepath.Join(dir, "bad.ldv")
	if err := os.WriteFile(bad, []byte("this is not a state file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"state", "-file", bad})
	if err == nil {
		t.Fatal("corrupted state file accepted")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the file", err)
	}
	// A checksum-corrupted but otherwise well-formed file is also rejected.
	good := writeStateFile(t, dir)
	data, rerr := os.ReadFile(good)
	if rerr != nil {
		t.Fatal(rerr)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"state", "-file", good}); err == nil {
		t.Error("bit-rotted state file accepted")
	}
}
