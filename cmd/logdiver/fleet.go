package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"logdiver"
	"logdiver/internal/correlate"
	"logdiver/internal/fleet"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/report"
	"logdiver/internal/store"
)

// Fleet batch analysis: `logdiver analyze -fleet-config fleet.conf` analyzes
// every configured shard from scratch (bounded concurrency), stamps each
// result with its machine name, folds them with store.Merge — the same
// merge the daemon's scatter-gather plane uses — and prints fleet tables.

// analyzeFleetConcurrency bounds how many shards analyze at once.
const analyzeFleetConcurrency = 4

// shardResult is one machine's from-scratch analysis.
type shardResult struct {
	name string
	snap *store.Snapshot
	err  error
}

func analyzeFleet(confPath string, opts logdiver.Options, defaultTZ, format string) error {
	cfg, err := fleet.LoadConfig(confPath)
	if err != nil {
		return err
	}
	results := make([]shardResult, len(cfg.Shards))
	sem := make(chan struct{}, analyzeFleetConcurrency)
	var wg sync.WaitGroup
	for i, sc := range cfg.Shards {
		wg.Add(1)
		go func(i int, sc fleet.ShardConfig) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			snap, err := analyzeShard(sc, opts, defaultTZ)
			results[i] = shardResult{name: sc.Name, snap: snap, err: err}
		}(i, sc)
	}
	wg.Wait()

	merged := store.Zero()
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("shard %q: %w", r.name, r.err)
		}
		merged = store.Merge(merged, r.snap)
	}
	return renderFleetTables(os.Stdout, format, results, merged)
}

// analyzeShard runs the full offline pipeline over one shard's archive
// directory. Missing archive files are treated as empty, matching the
// daemon tailer's semantics for archives that have not appeared yet.
func analyzeShard(sc fleet.ShardConfig, opts logdiver.Options, defaultTZ string) (*store.Snapshot, error) {
	var mc machine.Config
	switch sc.Machine {
	case fleet.MachineSmall:
		mc = machine.Small()
	default:
		mc = machine.BlueWaters()
	}
	top, err := machine.New(mc)
	if err != nil {
		return nil, err
	}
	tzName := sc.TimeZone
	if tzName == "" {
		tzName = defaultTZ
	}
	loc, err := time.LoadLocation(tzName)
	if err != nil {
		return nil, fmt.Errorf("timezone: %w", err)
	}

	archives := logdiver.Archives{Location: loc}
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	openInto := func(name string, dst *io.Reader) error {
		f, err := os.Open(filepath.Join(sc.ArchiveDir, name))
		if os.IsNotExist(err) {
			return nil
		}
		if err != nil {
			return err
		}
		closers = append(closers, f)
		*dst = f
		return nil
	}
	if err := openInto(store.AccountingFile, &archives.Accounting); err != nil {
		return nil, err
	}
	if err := openInto(store.ApsysFile, &archives.Apsys); err != nil {
		return nil, err
	}
	if err := openInto(store.SyslogFile, &archives.Syslog); err != nil {
		return nil, err
	}

	res, err := logdiver.Analyze(archives, top, opts)
	if err != nil {
		return nil, err
	}
	snap, err := store.Build(res, top, store.IngestStats{Rounds: 1}, time.Now())
	if err != nil {
		return nil, err
	}
	snap.Machine = sc.Name
	snap.Epoch = 1
	return snap, nil
}

// renderFleetTables prints the three fleet tables in the requested format.
func renderFleetTables(w io.Writer, format string, results []shardResult, merged *store.Snapshot) error {
	shards := report.Table{
		ID:      "F1",
		Title:   "Fleet shards",
		Columns: []string{"machine", "runs", "jobs", "events", "node-hours", "sys-fail"},
	}
	for _, r := range results {
		b := r.snap.Outcomes
		shards.AddRow(r.name,
			report.Count(b.Total),
			report.Count(len(r.snap.Result.Jobs)),
			report.Count(len(r.snap.Result.Events)),
			report.F1(b.TotalNodeHours),
			report.Pct(b.SystemFailureFraction()))
	}

	outcomes := report.Table{
		ID:      "F2",
		Title:   "Fleet outcome breakdown (merged)",
		Columns: []string{"outcome", "runs", "share", "node-hours"},
		Notes: []string{fmt.Sprintf("%d machines merged; %d runs total",
			len(results), merged.Outcomes.Total)},
	}
	order := []correlate.Outcome{
		correlate.OutcomeSuccess,
		correlate.OutcomeUserFailure,
		correlate.OutcomeWalltime,
		correlate.OutcomeSystemFailure,
	}
	for _, o := range order {
		var share float64
		if merged.Outcomes.Total > 0 {
			share = float64(merged.Outcomes.Counts[o]) / float64(merged.Outcomes.Total)
		}
		outcomes.AddRow(o.String(),
			report.Count(merged.Outcomes.Counts[o]),
			report.Pct(share),
			report.F1(merged.Outcomes.NodeHours[o]))
	}

	const topCategories = 10
	type catRow struct {
		name     string
		failures int
		lost     float64
	}
	var cats []catRow
	for _, c := range merged.Categories {
		cats = append(cats, catRow{c.Group.String() + "/" + c.Category.String(), c.Failures, c.NodeHoursLost})
	}
	sort.SliceStable(cats, func(i, j int) bool { return cats[i].failures > cats[j].failures })
	if len(cats) > topCategories {
		cats = cats[:topCategories]
	}
	categories := report.Table{
		ID:      "F3",
		Title:   "Fleet failure categories (merged, top by failures)",
		Columns: []string{"category", "failures", "node-hours lost"},
	}
	for _, c := range cats {
		categories.AddRow(c.name, report.Count(c.failures), report.F1(c.lost))
	}

	for _, tbl := range []*report.Table{&shards, &outcomes, &categories} {
		var err error
		switch format {
		case "ascii":
			err = tbl.Render(w)
			fmt.Fprintln(w)
		case "md":
			err = tbl.RenderMarkdown(w)
		case "csv":
			fmt.Fprintf(w, "# %s: %s\n", tbl.ID, tbl.Title)
			err = tbl.RenderCSV(w)
		default:
			return fmt.Errorf("unknown format %q", format)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// generateFleet writes a K-machine fleet layout under out: one archive
// subdirectory per machine plus a ready-to-run fleet.conf with relative
// paths. Window w > 0 appends that production window to the existing
// archives instead of recreating them; only restricts the write to a single
// machine (the CI smoke test grows one shard that way).
func generateFleet(k, days int, seed int64, window int, only, out string, par int) error {
	machines := gen.Fleet(k, days, seed)
	conf := fleet.Config{}
	var wrote []string
	for _, m := range machines {
		conf.Shards = append(conf.Shards, fleet.ShardConfig{
			Name:       m.Name,
			ArchiveDir: m.Name,
			Machine:    fleet.MachineSmall,
			StateDir:   filepath.Join("state", m.Name),
		})
		if only != "" && m.Name != only {
			continue
		}
		cfg := m.Window(window)
		cfg.Parallelism = par
		ds, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		dir := filepath.Join(out, m.Name)
		if window == 0 {
			if err := ds.WriteDir(dir); err != nil {
				return err
			}
		} else if err := appendShardWindow(dir, ds); err != nil {
			return err
		}
		wrote = append(wrote, m.Name)
	}
	if only != "" && len(wrote) == 0 {
		return fmt.Errorf("generate: -fleet-only %q names no machine of a %d-machine fleet", only, k)
	}
	if window == 0 && only == "" {
		if err := os.WriteFile(filepath.Join(out, "fleet.conf"), []byte(conf.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote fleet window %d for %v under %s\n", window, wrote, out)
	return nil
}

// appendShardWindow appends one dataset's archives (and truth) to the
// shard's existing files.
func appendShardWindow(dir string, ds *gen.Dataset) error {
	appendTo := func(name string, write func(io.Writer) error) error {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := appendTo(store.AccountingFile, ds.WriteAccounting); err != nil {
		return err
	}
	if err := appendTo(store.ApsysFile, ds.WriteApsys); err != nil {
		return err
	}
	if err := appendTo(store.SyslogFile, ds.WriteErrorLog); err != nil {
		return err
	}
	return appendTo("truth.jsonl", ds.WriteTruth)
}
