// Command tracegen synthesizes a Blue Waters-style field-data archive:
// Torque accounting, ALPS apsys and syslog error logs, plus the ground-truth
// sidecar, written to a directory.
//
// Usage:
//
//	tracegen -days 30 -seed 1 -out ./archive [-machine bluewaters|small]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days        = flag.Int("days", 30, "production days to synthesize")
		seed        = flag.Int64("seed", 1, "random seed (fixed seed reproduces the archive byte for byte)")
		out         = flag.String("out", "archive", "output directory")
		machine     = flag.String("machine", "bluewaters", "machine model: bluewaters or small")
		parallelism = flag.Int("parallelism", 0, "log-emission worker count (0 = GOMAXPROCS; output bytes are identical at any setting)")
	)
	flag.Parse()

	cfg := logdiver.ScaledGeneratorConfig(*days)
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	switch *machine {
	case "bluewaters":
		// default
	case "small":
		cfg.Machine = logdiver.SmallMachine()
		cfg.Workload.JobsPerDay = 300
		cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
		cfg.Workload.XKCapabilitySizes = []int{64, 160}
		cfg.Workload.FullScaleKneeXE = 512
		cfg.Workload.FullScaleKneeXK = 160
		cfg.Workload.SmallSizeMax = 96
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}

	fmt.Fprintf(os.Stderr, "generating %d days on %s (seed %d)...\n", *days, *machine, *seed)
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "jobs=%d runs=%d events=%d\n", len(ds.Jobs), len(ds.Runs), len(ds.Events))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name  string
		write func(*bufio.Writer) error
	}{
		{"accounting.log", func(w *bufio.Writer) error { return ds.WriteAccounting(w) }},
		{"apsys.log", func(w *bufio.Writer) error { return ds.WriteApsys(w) }},
		{"syslog.log", func(w *bufio.Writer) error { return ds.WriteErrorLog(w) }},
		{"truth.jsonl", func(w *bufio.Writer) error { return ds.WriteTruth(w) }},
	}
	for _, spec := range writers {
		path := filepath.Join(*out, spec.name)
		if err := writeFile(path, spec.write); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

func writeFile(path string, write func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
