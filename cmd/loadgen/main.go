// Command loadgen drives a running logdiverd query tier with a seeded,
// deterministic request mix and reports latency percentiles, error rates,
// and achieved throughput. It is the measurement half of the serving-layer
// saturation story: run it at a concurrency at or beyond the daemon's
// -max-inflight bound and the report shows whether the server sheds
// promptly (shed_p99) while admitted requests stay fast (p99).
//
// Two generation modes:
//
//   - closed (default): -c workers each keep exactly one request in flight.
//     The achieved throughput line IS the max sustainable RPS at that
//     concurrency — a closed loop cannot outrun the server.
//   - open: requests depart on a fixed schedule at -rps regardless of how
//     fast responses come back, and latency is measured from the SCHEDULED
//     departure time, so queueing delay the server causes is charged to it
//     (no coordinated omission).
//
// The mix is deterministic for a given -seed: closed mode seeds one RNG per
// worker (seed+worker), open mode pre-generates the whole request schedule
// from one RNG. Latencies vary run to run; the request sequence does not.
//
// Results are written as `go test -bench` formatted lines so benchgate can
// record and gate them (BENCH_load.json):
//
//	BenchmarkLoadgen/p50          <ok>    <ns> ns/op
//	BenchmarkLoadgen/p99          <ok>    <ns> ns/op
//	BenchmarkLoadgen/p999         <ok>    <ns> ns/op
//	BenchmarkLoadgen/shed_p99     <shed>  <ns> ns/op
//	BenchmarkLoadgen/error_ppm    <total> <errors-per-million> ns/op
//	BenchmarkLoadgen/throughput   <total> <mean-ns> ns/op <rps> MB/s
//
// The ns/op slot carries the metric being gated (latency ceilings and the
// error rate gate through benchgate -max-ns); the throughput line carries
// achieved requests/second in the MB/s slot, gated through -min-mbps.
//
// Responses classify as: ok (200, 304), shed (429 or 503 bearing
// Retry-After — the server's honest overload answer, never an error), or
// error (transport failure, any other status, or a shed missing its
// Retry-After hint).
//
// Against a daemon running in fleet mode (-fleet-config), the mix kinds
// fleet and fleet_machine hit the merged /v1/fleet/* views and per-machine
// shard views (-mix fleet=3,fleet_machine=2,...); preflight learns the
// shard machine names from the /v1/health fleet section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type config struct {
	baseURL  string
	mode     string
	workers  int
	requests int
	rps      float64
	duration time.Duration
	seed     int64
	mix      []mixEntry
	timeout  time.Duration
	wait     time.Duration
}

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of the logdiverd query API")
		mode     = flag.String("mode", "closed", "generation mode: closed (fixed concurrency) or open (fixed arrival rate)")
		workers  = flag.Int("c", 8, "closed mode: concurrent workers; open mode: max outstanding requests")
		requests = flag.Int("n", 2000, "closed mode: total requests")
		rps      = flag.Float64("rps", 200, "open mode: arrival rate, requests per second")
		duration = flag.Duration("duration", 10*time.Second, "open mode: run length")
		seed     = flag.Int64("seed", 1, "RNG seed for the request mix")
		mixSpec  = flag.String("mix", defaultMix, "request mix, comma-separated kind=weight pairs")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		wait     = flag.Duration("wait", 10*time.Second, "max time to wait for the server to report healthy")
		out      = flag.String("out", "-", "bench-format results path (- for stdout)")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	cfg := config{
		baseURL: strings.TrimRight(*url, "/"), mode: *mode, workers: *workers,
		requests: *requests, rps: *rps, duration: *duration, seed: *seed,
		mix: mix, timeout: *timeout, wait: *wait,
	}
	if cfg.workers < 1 {
		return fmt.Errorf("-c must be at least 1")
	}

	client := &http.Client{Timeout: cfg.timeout}
	tg, err := preflight(client, cfg.baseURL, cfg.wait)
	if err != nil {
		return err
	}

	var res *results
	switch cfg.mode {
	case "closed":
		res = runClosed(cfg, client, tg)
	case "open":
		res = runOpen(cfg, client, tg)
	default:
		return fmt.Errorf("unknown -mode %q: want closed or open", cfg.mode)
	}
	if len(res.okLat) == 0 {
		return fmt.Errorf("no request succeeded (%d errors of %d): is %s a logdiverd?",
			res.errs, res.total, cfg.baseURL)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	writeBench(w, res)
	writeSummary(os.Stderr, res)
	return nil
}

// defaultMix exercises every serving path: cached views, the paginated
// list, dynamic pages, run drill-downs, conditional revalidations, and
// gzip negotiation.
const defaultMix = "outcomes=3,scaling=2,mtti=1,categories=1,runs_list=2,runs_page=1,runs=1,cond=3,gzip=1"

// fleetMix adds the scatter-gather plane to the default mix: merged fleet
// views plus per-machine shard views. Use it against a daemon started with
// -fleet-config (the fleet paths 404 on a single-machine daemon).
const fleetMix = defaultMix + ",fleet=3,fleet_machine=2"

type mixEntry struct {
	kind   string
	weight int
}

var knownKinds = map[string]bool{
	"outcomes": true, "scaling": true, "mtti": true, "categories": true,
	"runs_list": true, "runs_page": true, "runs": true, "cond": true, "gzip": true,
	"fleet": true, "fleet_machine": true,
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q: want kind=weight", part)
		}
		kind = strings.TrimSpace(kind)
		if !knownKinds[kind] {
			return nil, fmt.Errorf("unknown mix kind %q", kind)
		}
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%d", &w); err != nil || w < 1 {
			return nil, fmt.Errorf("bad mix weight %q: want a positive integer", part)
		}
		mix = append(mix, mixEntry{kind: kind, weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

func mixTotal(mix []mixEntry) int {
	total := 0
	for _, e := range mix {
		total += e.weight
	}
	return total
}

// plan is one concrete request: a path plus the conditional / encoding
// decorations the mix asked for.
type plan struct {
	path string
	cond bool // send If-None-Match with the last ETag seen
	gzip bool
}

// targets is what preflight learned about the server: real apids for run
// drill-downs and, when the daemon serves a fleet, its shard machine names
// for per-machine fleet views.
type targets struct {
	apids    []uint64
	machines []string
}

// pickPlan draws one request from the mix using rng. All randomness lives
// here, so the request sequence is a pure function of the seed.
func pickPlan(rng *rand.Rand, mix []mixEntry, total int, tg targets) plan {
	n := rng.Intn(total)
	kind := mix[len(mix)-1].kind
	for _, e := range mix {
		if n < e.weight {
			kind = e.kind
			break
		}
		n -= e.weight
	}
	switch kind {
	case "outcomes":
		return plan{path: "/v1/outcomes"}
	case "scaling":
		classes := []string{"xe", "xk"}
		return plan{path: "/v1/scaling?class=" + classes[rng.Intn(len(classes))]}
	case "mtti":
		return plan{path: "/v1/mtti"}
	case "categories":
		return plan{path: "/v1/categories"}
	case "runs_list":
		return plan{path: "/v1/runs"}
	case "runs_page":
		limits := []string{"25", "50", "250"}
		return plan{path: "/v1/runs?limit=" + limits[rng.Intn(len(limits))]}
	case "runs":
		if len(tg.apids) == 0 {
			return plan{path: "/v1/runs"}
		}
		return plan{path: fmt.Sprintf("/v1/runs/%d", tg.apids[rng.Intn(len(tg.apids))])}
	case "fleet":
		views := []string{"/v1/fleet/outcomes", "/v1/fleet/scaling?class=xe",
			"/v1/fleet/scaling?class=xk", "/v1/fleet/mtti", "/v1/fleet/categories"}
		return plan{path: views[rng.Intn(len(views))]}
	case "fleet_machine":
		if len(tg.machines) == 0 {
			return plan{path: "/v1/fleet/outcomes"}
		}
		return plan{path: "/v1/fleet/outcomes?machine=" + tg.machines[rng.Intn(len(tg.machines))]}
	case "cond":
		return plan{path: "/v1/outcomes", cond: true}
	default: // gzip
		return plan{path: "/v1/outcomes", gzip: true}
	}
}

// preflight waits for /v1/health to answer 200, learns the fleet's shard
// machine names from the health body (empty for a single-machine daemon),
// then learns a set of real apids from the first runs page so the mix can
// exercise drill-downs.
func preflight(client *http.Client, base string, wait time.Duration) (targets, error) {
	var tg targets
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/v1/health")
		if err == nil && resp.StatusCode == http.StatusOK {
			var health struct {
				Fleet *struct {
					Shards []struct {
						Name string `json:"name"`
					} `json:"shards"`
				} `json:"fleet"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if decErr == nil && health.Fleet != nil {
				for _, sh := range health.Fleet.Shards {
					tg.machines = append(tg.machines, sh.Name)
				}
			}
			break
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			if err != nil {
				return tg, fmt.Errorf("server not healthy after %s: %v", wait, err)
			}
			return tg, fmt.Errorf("server not healthy after %s", wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
	resp, err := client.Get(base + "/v1/runs")
	if err != nil {
		return tg, err
	}
	defer resp.Body.Close()
	var page struct {
		Runs []struct {
			ApID uint64 `json:"apid"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return tg, fmt.Errorf("decoding /v1/runs: %w", err)
	}
	for _, r := range page.Runs {
		tg.apids = append(tg.apids, r.ApID)
	}
	return tg, nil
}

// outcome is one request's classified result.
type outcome struct {
	lat   time.Duration
	class int // classOK, classShed, classErr
}

const (
	classOK = iota
	classShed
	classErr
)

// doRequest executes one planned request and classifies the response. The
// latency is measured from `from`, which the open loop sets to the
// scheduled departure time. etag carries the worker's last seen ETag in
// and out for conditional requests.
func doRequest(client *http.Client, base string, p plan, from time.Time, etag *string) outcome {
	req, err := http.NewRequest("GET", base+p.path, nil)
	if err != nil {
		return outcome{class: classErr}
	}
	if p.cond && *etag != "" {
		req.Header.Set("If-None-Match", *etag)
	}
	if p.gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := client.Do(req)
	if err != nil {
		return outcome{lat: time.Since(from), class: classErr}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(from)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotModified:
		if et := resp.Header.Get("ETag"); et != "" {
			*etag = et
		}
		return outcome{lat: lat, class: classOK}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") == "" {
			// A shed without a hint is a contract violation, not load
			// shedding.
			return outcome{lat: lat, class: classErr}
		}
		return outcome{lat: lat, class: classShed}
	default:
		return outcome{lat: lat, class: classErr}
	}
}

// results aggregates a run. okLat and shedLat are sorted ascending.
type results struct {
	mode    string
	total   int
	okLat   []time.Duration
	shedLat []time.Duration
	errs    int
	elapsed time.Duration
}

func collect(mode string, outs []outcome, elapsed time.Duration) *results {
	res := &results{mode: mode, total: len(outs), elapsed: elapsed}
	for _, o := range outs {
		switch o.class {
		case classOK:
			res.okLat = append(res.okLat, o.lat)
		case classShed:
			res.shedLat = append(res.shedLat, o.lat)
		default:
			res.errs++
		}
	}
	sort.Slice(res.okLat, func(i, j int) bool { return res.okLat[i] < res.okLat[j] })
	sort.Slice(res.shedLat, func(i, j int) bool { return res.shedLat[i] < res.shedLat[j] })
	return res
}

// runClosed keeps cfg.workers requests in flight until cfg.requests have
// completed. Worker w draws its mix from seed+w.
func runClosed(cfg config, client *http.Client, tg targets) *results {
	total := mixTotal(cfg.mix)
	outs := make([]outcome, cfg.requests)
	var (
		wg   sync.WaitGroup
		next = make(chan int, cfg.workers)
	)
	began := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			etag := ""
			for i := range next {
				p := pickPlan(rng, cfg.mix, total, tg)
				outs[i] = doRequest(client, cfg.baseURL, p, time.Now(), &etag)
			}
		}(w)
	}
	for i := 0; i < cfg.requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return collect("closed", outs, time.Since(began))
}

// runOpen fires requests on a fixed schedule at cfg.rps for cfg.duration.
// The whole schedule is drawn up front from one RNG, so the mix is
// deterministic; outstanding requests are bounded at 4x workers, and the
// wait for a slot counts into the request's latency (it is queueing the
// server caused).
func runOpen(cfg config, client *http.Client, tg targets) *results {
	interval := time.Duration(float64(time.Second) / cfg.rps)
	n := int(cfg.duration.Seconds() * cfg.rps)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	total := mixTotal(cfg.mix)
	plans := make([]plan, n)
	for i := range plans {
		plans[i] = pickPlan(rng, cfg.mix, total, tg)
	}

	outs := make([]outcome, n)
	sem := make(chan struct{}, 4*cfg.workers)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		etag string
	)
	began := time.Now()
	for i := 0; i < n; i++ {
		sched := began.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			mu.Lock()
			et := etag
			mu.Unlock()
			o := doRequest(client, cfg.baseURL, plans[i], sched, &et)
			if et != "" {
				mu.Lock()
				etag = et
				mu.Unlock()
			}
			outs[i] = o
		}(i, sched)
	}
	wg.Wait()
	return collect("open", outs, time.Since(began))
}

// percentile returns the q-quantile of sorted (nearest-rank); zero when
// empty.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func mean(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return sum / time.Duration(len(lats))
}

// writeBench renders the results as go-bench lines for benchgate.
func writeBench(w io.Writer, r *results) {
	ok := len(r.okLat)
	fmt.Fprintf(w, "BenchmarkLoadgen/p50 %d %d ns/op\n", ok, percentile(r.okLat, 0.50).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkLoadgen/p99 %d %d ns/op\n", ok, percentile(r.okLat, 0.99).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkLoadgen/p999 %d %d ns/op\n", ok, percentile(r.okLat, 0.999).Nanoseconds())
	fmt.Fprintf(w, "BenchmarkLoadgen/shed_p99 %d %d ns/op\n", len(r.shedLat), percentile(r.shedLat, 0.99).Nanoseconds())
	ppm := float64(r.errs) / float64(r.total) * 1e6
	fmt.Fprintf(w, "BenchmarkLoadgen/error_ppm %d %.0f ns/op\n", r.total, ppm)
	rps := float64(r.total-r.errs) / r.elapsed.Seconds()
	fmt.Fprintf(w, "BenchmarkLoadgen/throughput %d %d ns/op %.2f MB/s\n",
		r.total, mean(r.okLat).Nanoseconds(), rps)
}

// writeSummary renders the human-readable report.
func writeSummary(w io.Writer, r *results) {
	fmt.Fprintf(w, "loadgen: mode=%s total=%d ok=%d shed=%d errors=%d in %.2fs (%.1f req/s)\n",
		r.mode, r.total, len(r.okLat), len(r.shedLat), r.errs,
		r.elapsed.Seconds(), float64(r.total-r.errs)/r.elapsed.Seconds())
	fmt.Fprintf(w, "loadgen: latency p50=%s p99=%s p999=%s max=%s\n",
		percentile(r.okLat, 0.50), percentile(r.okLat, 0.99),
		percentile(r.okLat, 0.999), percentile(r.okLat, 1))
	if len(r.shedLat) > 0 {
		fmt.Fprintf(w, "loadgen: shed p99=%s (prompt rejection is the point)\n",
			percentile(r.shedLat, 0.99))
	}
}
