package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"logdiver/internal/alps"
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/fleet"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/serve"
	"logdiver/internal/store"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix(defaultMix)
	if err != nil {
		t.Fatalf("default mix rejected: %v", err)
	}
	if len(mix) != 9 || mixTotal(mix) != 15 {
		t.Fatalf("default mix: %d entries, weight %d, want 9 and 15", len(mix), mixTotal(mix))
	}
	if mix[0].kind != "outcomes" || mix[0].weight != 3 {
		t.Errorf("first entry %+v", mix[0])
	}
	for _, bad := range []string{"", "outcomes", "outcomes=0", "outcomes=-1", "nosuch=1", "outcomes=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
	fm, err := parseMix(fleetMix)
	if err != nil {
		t.Fatalf("fleet mix rejected: %v", err)
	}
	if len(fm) != 11 || mixTotal(fm) != 20 {
		t.Fatalf("fleet mix: %d entries, weight %d, want 11 and 20", len(fm), mixTotal(fm))
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := percentile(lats, tc.q); got != tc.want {
			t.Errorf("percentile(%.3f) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestPickPlanDeterministic pins the seeded mix: the same seed draws the
// same request sequence, a different seed a different one.
func TestPickPlanDeterministic(t *testing.T) {
	mix, err := parseMix(defaultMix)
	if err != nil {
		t.Fatal(err)
	}
	total := mixTotal(mix)
	tg := targets{apids: []uint64{1, 2, 3}}
	draw := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		seq := make([]string, 200)
		for i := range seq {
			p := pickPlan(rng, mix, total, tg)
			seq[i] = p.path
			if p.cond {
				seq[i] += "+cond"
			}
			if p.gzip {
				seq[i] += "+gzip"
			}
		}
		return seq
	}
	a, b, c := draw(7), draw(7), draw(8)
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatal("same seed drew different sequences")
	}
	if strings.Join(a, " ") == strings.Join(c, " ") {
		t.Fatal("different seeds drew identical sequences")
	}
	// The default mix must reach every endpoint family.
	joined := strings.Join(a, " ")
	for _, want := range []string{"/v1/outcomes", "/v1/scaling?class=", "/v1/mtti",
		"/v1/categories", "/v1/runs ", "/v1/runs?limit=", "/v1/runs/", "+cond", "+gzip"} {
		if !strings.Contains(joined+" ", want) {
			t.Errorf("200 draws never produced %q", want)
		}
	}
}

// TestWriteBench pins the go-bench output contract benchgate parses.
func TestWriteBench(t *testing.T) {
	r := &results{
		mode:    "closed",
		total:   1000,
		okLat:   []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
		shedLat: []time.Duration{100 * time.Microsecond},
		errs:    2,
		elapsed: 2 * time.Second,
	}
	var b strings.Builder
	writeBench(&b, r)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 bench lines, got %d:\n%s", len(lines), b.String())
	}
	wantPrefixes := []string{
		"BenchmarkLoadgen/p50 3 ",
		"BenchmarkLoadgen/p99 3 ",
		"BenchmarkLoadgen/p999 3 ",
		"BenchmarkLoadgen/shed_p99 1 100000 ns/op",
		"BenchmarkLoadgen/error_ppm 1000 2000 ns/op",
		"BenchmarkLoadgen/throughput 1000 2000000 ns/op 499.00 MB/s",
	}
	for i, want := range wantPrefixes {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], want)
		}
		if !strings.Contains(lines[i], "ns/op") {
			t.Errorf("line %d missing ns/op: %q", i, lines[i])
		}
	}
}

// testSnapshotServer boots a real serve.Server over a synthetic snapshot.
func testSnapshotServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	top, err := machine.New(machine.Small())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	runs := make([]correlate.AttributedRun, 40)
	for i := range runs {
		runs[i] = correlate.AttributedRun{
			AppRun: alps.AppRun{
				ApID:  uint64(i + 1),
				Nodes: []machine.NodeID{machine.NodeID(i % 8)},
				Start: base.Add(time.Duration(i) * time.Minute),
				End:   base.Add(time.Duration(i+1) * time.Minute),
			},
			Class:   machine.ClassXE,
			Outcome: correlate.OutcomeSuccess,
		}
	}
	snap, err := store.Build(&core.Result{Runs: runs}, top, store.IngestStats{}, base)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.Install(snap)
	cfg.Store = st
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestClosedLoopIntegration runs the closed loop against a real serving
// stack: every request must land (no errors, no sheds on an unbounded
// server) and the report must be internally consistent.
func TestClosedLoopIntegration(t *testing.T) {
	ts := testSnapshotServer(t, serve.Config{})
	client := &http.Client{Timeout: 5 * time.Second}
	tg, err := preflight(client, ts.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.apids) != 40 {
		t.Fatalf("preflight learned %d apids, want 40", len(tg.apids))
	}
	if len(tg.machines) != 0 {
		t.Fatalf("single-machine daemon reported fleet machines %v", tg.machines)
	}
	cfg := config{
		baseURL: ts.URL, workers: 4, requests: 300, seed: 1,
		mix: mustMix(t), timeout: 5 * time.Second,
	}
	res := runClosed(cfg, client, tg)
	if res.total != 300 {
		t.Fatalf("total %d, want 300", res.total)
	}
	if res.errs != 0 || len(res.shedLat) != 0 {
		t.Fatalf("unbounded server: %d errors, %d sheds, want 0/0", res.errs, len(res.shedLat))
	}
	if len(res.okLat) != 300 {
		t.Fatalf("ok %d, want 300", len(res.okLat))
	}
	p50, p99, p999 := percentile(res.okLat, 0.5), percentile(res.okLat, 0.99), percentile(res.okLat, 0.999)
	if p50 <= 0 || p50 > p99 || p99 > p999 {
		t.Fatalf("percentile ordering broke: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
}

// TestOpenLoopIntegration runs a short open-loop schedule and checks the
// arrival accounting: every scheduled request resolves to exactly one
// outcome class.
func TestOpenLoopIntegration(t *testing.T) {
	ts := testSnapshotServer(t, serve.Config{})
	client := &http.Client{Timeout: 5 * time.Second}
	tg, err := preflight(client, ts.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		baseURL: ts.URL, workers: 4, rps: 400, duration: 500 * time.Millisecond,
		seed: 3, mix: mustMix(t), timeout: 5 * time.Second,
	}
	res := runOpen(cfg, client, tg)
	want := int(cfg.duration.Seconds() * cfg.rps)
	if res.total != want {
		t.Fatalf("total %d, want %d", res.total, want)
	}
	if got := len(res.okLat) + len(res.shedLat) + res.errs; got != want {
		t.Fatalf("classified %d of %d outcomes", got, want)
	}
	if res.errs != 0 {
		t.Fatalf("%d errors against a healthy unbounded server", res.errs)
	}
}

// TestShedClassification drives the loop against a rate-limited server:
// sheds must be counted as sheds (not errors), and the 429s must carry
// Retry-After to qualify.
func TestShedClassification(t *testing.T) {
	ts := testSnapshotServer(t, serve.Config{RateLimit: 5, RateBurst: 5})
	client := &http.Client{Timeout: 5 * time.Second}
	tg, err := preflight(client, ts.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// preflight consumed some of the bucket; the burst covers it.
	cfg := config{
		baseURL: ts.URL, workers: 4, requests: 100, seed: 1,
		mix: mustMix(t), timeout: 5 * time.Second,
	}
	res := runClosed(cfg, client, tg)
	if res.errs != 0 {
		t.Fatalf("%d errors; sheds must classify as sheds", res.errs)
	}
	if len(res.shedLat) == 0 {
		t.Fatal("100 requests through a 5-token bucket shed nothing")
	}
	if len(res.okLat) == 0 {
		t.Fatal("everything shed; the burst should have admitted some")
	}
	if len(res.okLat)+len(res.shedLat) != 100 {
		t.Fatalf("ok %d + shed %d != 100", len(res.okLat), len(res.shedLat))
	}
}

// TestShedWithoutRetryAfterIsError pins the contract check: a 503 missing
// Retry-After is a server bug, counted as an error.
func TestShedWithoutRetryAfterIsError(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/health" || r.URL.Path == "/v1/runs":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"runs":[{"apid":1}]}`))
		case n.Add(1)%2 == 0:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusServiceUnavailable) // no Retry-After
		}
	}))
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	tg, err := preflight(client, ts.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		baseURL: ts.URL, workers: 2, requests: 40, seed: 1,
		mix: []mixEntry{{kind: "outcomes", weight: 1}}, timeout: 5 * time.Second,
	}
	res := runClosed(cfg, client, tg)
	if res.errs == 0 || len(res.shedLat) == 0 {
		t.Fatalf("want both errors (no hint) and sheds (hinted): errs=%d sheds=%d",
			res.errs, len(res.shedLat))
	}
	if res.errs+len(res.shedLat) != 40 {
		t.Fatalf("errs %d + sheds %d != 40", res.errs, len(res.shedLat))
	}
}

func mustMix(t *testing.T) []mixEntry {
	t.Helper()
	mix, err := parseMix(defaultMix)
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

// TestFleetMixIntegration drives the fleet kinds against a real fleet
// daemon stack: preflight learns the shard machine names from /v1/health
// and the closed loop lands every merged and per-machine fleet request.
func TestFleetMixIntegration(t *testing.T) {
	machines := gen.Fleet(2, 1, 31)
	for i := range machines {
		machines[i].Config.Workload.JobsPerDay = 60
	}
	root := t.TempDir()
	var b strings.Builder
	for _, m := range machines {
		ds, err := gen.Generate(m.Config)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteDir(filepath.Join(root, m.Name)); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "[shard %s]\narchive-dir = %s\nmachine = small\n",
			m.Name, filepath.Join(root, m.Name))
	}
	fcfg, err := fleet.ParseConfig(b.String())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := fleet.NewManager(fleet.ManagerConfig{Config: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	mgr.SyncRound(t.Context())
	srv, err := serve.New(serve.Config{Fleet: mgr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	tg, err := preflight(client, ts.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.machines) != 2 {
		t.Fatalf("preflight learned machines %v, want 2", tg.machines)
	}

	mix, err := parseMix("fleet=3,fleet_machine=2")
	if err != nil {
		t.Fatal(err)
	}
	// The seeded draw must reach both merged and per-machine paths.
	rng := rand.New(rand.NewSource(5))
	var joined strings.Builder
	for i := 0; i < 100; i++ {
		joined.WriteString(pickPlan(rng, mix, mixTotal(mix), tg).path + " ")
	}
	for _, want := range []string{"/v1/fleet/outcomes", "/v1/fleet/scaling?class=",
		"/v1/fleet/mtti", "/v1/fleet/categories", "?machine=" + tg.machines[0], "?machine=" + tg.machines[1]} {
		if !strings.Contains(joined.String(), want) {
			t.Errorf("100 fleet draws never produced %q", want)
		}
	}

	cfg := config{
		baseURL: ts.URL, workers: 4, requests: 200, seed: 1,
		mix: mix, timeout: 5 * time.Second,
	}
	res := runClosed(cfg, client, tg)
	if res.errs != 0 || len(res.shedLat) != 0 {
		t.Fatalf("fleet mix: %d errors, %d sheds, want 0/0", res.errs, len(res.shedLat))
	}
	if len(res.okLat) != 200 {
		t.Fatalf("ok %d, want 200", len(res.okLat))
	}
}
