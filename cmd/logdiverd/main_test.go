package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"logdiver/internal/gen"
)

// writeDataset generates one small-machine day of data and appends its
// archives to the conventional file names under dir.
func writeDataset(t *testing.T, dir string, offsetDays int, seed int64) *gen.Dataset {
	t.Helper()
	cfg := gen.Small(1)
	cfg.Seed = seed
	cfg.Start = cfg.Start.AddDate(0, 0, offsetDays)
	cfg.Workload.JobsPerDay = 120
	ds, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendTo := func(name string, write func(io.Writer) error) {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	appendTo("accounting.log", ds.WriteAccounting)
	appendTo("apsys.log", ds.WriteApsys)
	appendTo("syslog.log", ds.WriteErrorLog)
	return ds
}

type health struct {
	Status  string `json:"status"`
	Epoch   uint64 `json:"epoch"`
	Runs    int    `json:"runs"`
	Restore *struct {
		Mode   string `json:"mode"`
		Detail string `json:"detail"`
		Epoch  uint64 `json:"epoch"`
	} `json:"restore"`
	Fleet *struct {
		FleetEpoch uint64 `json:"fleet_epoch"`
		Partial    bool   `json:"partial"`
		Shards     []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Epoch  uint64 `json:"epoch"`
			Runs   int    `json:"runs"`
			Error  string `json:"error"`
		} `json:"shards"`
	} `json:"fleet"`
}

func getHealth(base string) (health, error) {
	var h health
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("bad health JSON %q: %w", body, err)
	}
	return h, nil
}

// waitFor polls the health endpoint until pred holds or the deadline hits.
func waitFor(t *testing.T, base string, what string, pred func(health) bool) health {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last health
	for time.Now().Before(deadline) {
		h, err := getHealth(base)
		if err == nil {
			last = h
			if pred(h) {
				return h
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last health %+v", what, last)
	return health{}
}

// TestDaemonEndToEnd boots the real daemon body against a growing archive
// directory: readiness, every endpoint, epoch advance on append, and
// graceful SIGTERM shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds := writeDataset(t, dir, 0, 31)

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-listen", "127.0.0.1:0",
			"-data-dir", dir,
			"-poll-interval", "100ms",
			"-machine", "small",
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	h := waitFor(t, base, "first snapshot", func(h health) bool {
		return h.Status == "ok" && h.Runs > 0
	})
	if got, want := h.Runs, len(ds.Runs); got != want {
		t.Errorf("runs %d, want %d", got, want)
	}
	firstEpoch := h.Epoch

	// Every endpoint answers 200 with a JSON (or Prometheus) body.
	for _, path := range []string{
		"/v1/outcomes", "/v1/scaling?class=xe", "/v1/scaling?class=xk",
		"/v1/mtti", "/v1/categories",
		fmt.Sprintf("/v1/runs/%d", ds.Runs[0].ApID),
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Errorf("%s: invalid JSON: %q", path, body)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mbody), "logdiver_snapshot_epoch") {
		t.Errorf("metrics missing snapshot epoch gauge:\n%s", mbody)
	}

	// The archive grows; the daemon must notice and advance the epoch.
	writeDataset(t, dir, 2, 32)
	h2 := waitFor(t, base, "epoch advance", func(h health) bool {
		return h.Epoch > firstEpoch
	})
	if h2.Runs <= h.Runs {
		t.Errorf("runs did not grow on append: %d -> %d", h.Runs, h2.Runs)
	}

	// Graceful shutdown on SIGTERM.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not stop on SIGTERM")
	}
}

// bootDaemon starts the daemon body with the given extra flags and returns
// its base URL and exit channel. stop() sends SIGTERM and waits for a clean
// exit.
func bootDaemon(t *testing.T, dir string, extra ...string) (base string, stop func()) {
	t.Helper()
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-data-dir", dir,
		"-poll-interval", "100ms",
		"-machine", "small",
	}, extra...)
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(args, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	return base, func() {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not stop on SIGTERM")
		}
	}
}

// TestDaemonWarmRestart is the end-to-end durability scenario: run, persist,
// stop, grow the archives while down, restart — the second life must report
// a warm restore, continue the epoch sequence, and still pick up the growth.
func TestDaemonWarmRestart(t *testing.T) {
	dir, stateDir := t.TempDir(), t.TempDir()
	ds1 := writeDataset(t, dir, 0, 31)

	// First life: cold (no state file yet), then persists on shutdown.
	base, stop := bootDaemon(t, dir, "-state-dir", stateDir, "-state-interval", "10ms")
	h1 := waitFor(t, base, "first snapshot", func(h health) bool {
		return h.Status == "ok" && h.Runs == len(ds1.Runs)
	})
	if h1.Restore == nil || h1.Restore.Mode != "cold" {
		t.Fatalf("first life restore = %+v, want mode cold", h1.Restore)
	}
	stop()
	if _, err := os.Stat(filepath.Join(stateDir, "state.ldv")); err != nil {
		t.Fatalf("no state file after shutdown: %v", err)
	}

	// The archive grows while the daemon is down.
	writeDataset(t, dir, 2, 32)

	// Second life: warm restore, epoch continues, growth ingested.
	base2, stop2 := bootDaemon(t, dir, "-state-dir", stateDir)
	defer stop2()
	h2 := waitFor(t, base2, "warm snapshot with growth", func(h health) bool {
		return h.Status == "ok" && h.Runs > len(ds1.Runs)
	})
	if h2.Restore == nil || h2.Restore.Mode != "warm" {
		t.Fatalf("second life restore = %+v, want mode warm", h2.Restore)
	}
	if h2.Restore.Epoch != h1.Epoch {
		t.Errorf("restored epoch %d, want the first life's last epoch %d", h2.Restore.Epoch, h1.Epoch)
	}
	if h2.Epoch <= h1.Epoch {
		t.Errorf("epoch did not continue across restart: %d -> %d", h1.Epoch, h2.Epoch)
	}
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mbody), "logdiver_warm_restart 1") {
		t.Errorf("metrics missing warm-restart gauge:\n%s", mbody)
	}
}

// TestDaemonRestoreFallback is the crash-injection policy at daemon level:
// an unusable state file must cold-rebuild (with provenance) in lenient
// mode and refuse to start in strict mode — never crash, never serve wrong
// numbers.
func TestDaemonRestoreFallback(t *testing.T) {
	dir := t.TempDir()
	ds := writeDataset(t, dir, 0, 31)

	corrupt := func(t *testing.T) string {
		stateDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(stateDir, "state.ldv"), []byte("not a state file"), 0o644); err != nil {
			t.Fatal(err)
		}
		return stateDir
	}

	t.Run("lenient-falls-back-cold", func(t *testing.T) {
		base, stop := bootDaemon(t, dir, "-state-dir", corrupt(t))
		defer stop()
		h := waitFor(t, base, "cold rebuild", func(h health) bool {
			return h.Status == "ok" && h.Runs == len(ds.Runs)
		})
		if h.Restore == nil || h.Restore.Mode != "cold-fallback" || h.Restore.Detail == "" {
			t.Fatalf("restore = %+v, want cold-fallback with a reason", h.Restore)
		}
	})

	t.Run("strict-refuses", func(t *testing.T) {
		err := run([]string{
			"-listen", "127.0.0.1:0",
			"-data-dir", dir,
			"-machine", "small",
			"-parse-mode", "strict",
			"-state-dir", corrupt(t),
		}, nil)
		if err == nil || !strings.Contains(err.Error(), "state.ldv") {
			t.Fatalf("strict boot over corrupt state: err = %v, want provenance error naming the file", err)
		}
	})

	t.Run("strict-refuses-fingerprint-skew", func(t *testing.T) {
		// A valid state written under lenient mode must not restore into a
		// strict daemon: the fingerprint pins the parse policy.
		stateDir := t.TempDir()
		base, stop := bootDaemon(t, dir, "-state-dir", stateDir, "-state-interval", "10ms")
		waitFor(t, base, "snapshot", func(h health) bool { return h.Status == "ok" && h.Runs > 0 })
		stop()
		err := run([]string{
			"-listen", "127.0.0.1:0",
			"-data-dir", dir,
			"-machine", "small",
			"-parse-mode", "strict",
			"-state-dir", stateDir,
		}, nil)
		if err == nil || !strings.Contains(err.Error(), "parse mode") {
			t.Fatalf("strict boot over lenient state: err = %v, want fingerprint mismatch", err)
		}
	})
}

func TestDaemonFlagValidation(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}, nil); err == nil {
		t.Error("missing -data-dir accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-fleet-config", "fleet.conf"}, nil); err == nil {
		t.Error("-data-dir with -fleet-config accepted")
	}
	if err := run([]string{"-fleet-config", "fleet.conf", "-state-dir", t.TempDir()}, nil); err == nil {
		t.Error("-state-dir with -fleet-config accepted")
	}
	if err := run([]string{"-fleet-config", filepath.Join(t.TempDir(), "missing.conf")}, nil); err == nil {
		t.Error("missing fleet config file accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-poll-interval", "-1s"}, nil); err == nil {
		t.Error("negative poll interval accepted")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-machine", "nope"}, nil); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run([]string{"-version"}, nil); err != nil {
		t.Errorf("-version: %v", err)
	}
}

// TestDaemonServeKnobs boots the daemon with the serving-tier flags and
// exercises each through the real HTTP surface: epoch ETag caching with
// 304 revalidation, per-client rate limiting with 429 + Retry-After, and
// health staying reachable while the client is shed.
func TestDaemonServeKnobs(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, 0, 31)
	base, stop := bootDaemon(t, dir,
		"-rate-limit", "3", "-rate-burst", "3",
		"-max-inflight", "8", "-retry-after", "2s")
	defer stop()
	waitFor(t, base, "first snapshot", func(h health) bool { return h.Status == "ok" && h.Runs > 0 })

	// Cached response with an epoch ETag; conditional refetch is a 304.
	resp, err := http.Get(base + "/v1/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("outcomes: status %d etag %q", resp.StatusCode, etag)
	}
	req, _ := http.NewRequest("GET", base+"/v1/outcomes", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional refetch: status %d, %d body bytes, want empty 304", resp.StatusCode, len(body))
	}

	// Hammer past the 3-token bucket: a 429 with Retry-After must appear.
	var shed *http.Response
	for i := 0; i < 20 && shed == nil; i++ {
		r, err := http.Get(base + "/v1/outcomes")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		switch r.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed = r
		default:
			t.Fatalf("request %d: status %d", i, r.StatusCode)
		}
	}
	if shed == nil {
		t.Fatal("20 rapid requests through a 3-token bucket never shed")
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	// Health stays reachable while the data endpoints shed this client.
	if h, err := getHealth(base); err != nil || h.Status != "ok" {
		t.Fatalf("health during shedding: %+v, %v", h, err)
	}
}

// TestDaemonCacheDisabled boots with -cache=false and checks the responses
// still carry the full conditional-request surface (ETag, 304) — the cache
// is a cost optimization, never a semantic change.
func TestDaemonCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir, 0, 31)
	base, stop := bootDaemon(t, dir, "-cache=false")
	defer stop()
	waitFor(t, base, "first snapshot", func(h health) bool { return h.Status == "ok" && h.Runs > 0 })

	resp, err := http.Get(base + "/v1/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" || !json.Valid(body1) {
		t.Fatalf("uncached outcomes: status %d etag %q", resp.StatusCode, etag)
	}
	req, _ := http.NewRequest("GET", base+"/v1/outcomes", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("uncached conditional: status %d, want 304", resp.StatusCode)
	}
}

// TestDaemonFleetEndToEnd boots the daemon in fleet mode over two shard
// archive dirs: readiness with a full shard section, merged and per-machine
// fleet endpoints, a single-shard append advancing only that shard's epoch,
// and graceful shutdown persisting per-shard state.
func TestDaemonFleetEndToEnd(t *testing.T) {
	machines := gen.Fleet(2, 1, 23)
	for i := range machines {
		machines[i].Config.Workload.JobsPerDay = 60
	}
	root := t.TempDir()
	var conf strings.Builder
	for _, m := range machines {
		ds, err := gen.Generate(m.Config)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteDir(filepath.Join(root, m.Name)); err != nil {
			t.Fatal(err)
		}
		// Relative paths prove LoadConfig resolution against the file dir.
		fmt.Fprintf(&conf, "[shard %s]\narchive-dir = %s\nmachine = small\nstate-dir = %s\n",
			m.Name, m.Name, filepath.Join("state", m.Name))
	}
	confPath := filepath.Join(root, "fleet.conf")
	if err := os.WriteFile(confPath, []byte(conf.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-listen", "127.0.0.1:0",
			"-fleet-config", confPath,
			"-poll-interval", "100ms",
			"-state-interval", "10ms",
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	h := waitFor(t, base, "full fleet", func(h health) bool {
		if h.Status != "ok" || h.Fleet == nil || h.Fleet.Partial {
			return false
		}
		for _, sh := range h.Fleet.Shards {
			if sh.Status != "ok" {
				return false
			}
		}
		return len(h.Fleet.Shards) == 2
	})
	if h.Fleet.FleetEpoch == 0 {
		t.Fatal("fleet epoch still 0 after full sync")
	}

	// Merged and per-machine fleet endpoints answer 200 JSON.
	paths := []string{
		"/v1/fleet/outcomes", "/v1/fleet/scaling?class=xe", "/v1/fleet/scaling?class=xk",
		"/v1/fleet/mtti", "/v1/fleet/categories",
		"/v1/fleet/outcomes?machine=" + machines[0].Name,
	}
	for _, path := range paths {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Errorf("%s: invalid JSON: %q", path, body)
		}
	}

	// Appending a window to ONE shard advances only its epoch; the fleet
	// epoch advances because the vector changed.
	var before [2]uint64
	for i, sh := range h.Fleet.Shards {
		before[i] = sh.Epoch
	}
	grown := machines[1]
	ds, err := gen.Generate(grown.Window(1))
	if err != nil {
		t.Fatal(err)
	}
	appendTo := func(name string, write func(io.Writer) error) {
		f, err := os.OpenFile(filepath.Join(root, grown.Name, name), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendTo("accounting.log", ds.WriteAccounting)
	appendTo("apsys.log", ds.WriteApsys)
	appendTo("syslog.log", ds.WriteErrorLog)
	h2 := waitFor(t, base, "single-shard epoch advance", func(h health) bool {
		return h.Fleet != nil && h.Fleet.Shards[1].Epoch > before[1]
	})
	if h2.Fleet.Shards[0].Epoch != before[0] {
		t.Errorf("untouched shard epoch moved: %d -> %d", before[0], h2.Fleet.Shards[0].Epoch)
	}
	if h2.Fleet.FleetEpoch <= h.Fleet.FleetEpoch {
		t.Errorf("fleet epoch did not advance: %d -> %d", h.Fleet.FleetEpoch, h2.Fleet.FleetEpoch)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not stop on SIGTERM")
	}

	// Shutdown persisted per-shard state into the config-relative dirs.
	for _, m := range machines {
		if _, err := os.Stat(filepath.Join(root, "state", m.Name, "state.ldv")); err != nil {
			t.Errorf("shard %s state not persisted: %v", m.Name, err)
		}
	}
}
