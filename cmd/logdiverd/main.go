// Command logdiverd is the online serving daemon: it tails the growing log
// archives of a data directory, keeps an incrementally updated analysis of
// every application run, and serves the study's views over HTTP.
//
// Usage:
//
//	logdiverd -data-dir ./archive [-listen :8080] [-poll-interval 2s]
//	    [-machine bluewaters|small] [-parallelism N]
//	    [-parse-mode lenient|strict] [-rules site-rules.txt] [-tz UTC]
//	    [-request-timeout 10s]
//	logdiverd -version
//
// The daemon polls -data-dir every -poll-interval for growth of
// accounting.log, apsys.log and syslog.log (the names `logdiver generate`
// writes; absent files are treated as empty until they appear). Each poll
// that finds new lines is appended to the incremental pipeline, the
// affected time window is re-attributed, and a new immutable snapshot is
// published under the next epoch. Queries are answered from the latest
// snapshot without locking; every response carries its epoch.
//
// Endpoints: /v1/health, /v1/outcomes, /v1/scaling?class=xe|xk, /v1/mtti,
// /v1/categories, /v1/runs/{apid}, and Prometheus text metrics at /metrics.
//
// SIGINT/SIGTERM stop the poll loop and drain in-flight requests before
// exit. Logs are structured JSON on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logdiver"
	"logdiver/internal/rulecheck"
	"logdiver/internal/serve"
	"logdiver/internal/store"
	"logdiver/internal/taxonomy"
	"logdiver/internal/version"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "logdiverd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. onListen, when non-nil, receives the
// bound listener address before serving begins (tests use it to learn the
// ephemeral port).
func run(args []string, onListen func(addr string)) error {
	fs := flag.NewFlagSet("logdiverd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", ":8080", "HTTP listen address")
		dataDir     = fs.String("data-dir", "", "directory with accounting.log, apsys.log, syslog.log (required)")
		poll        = fs.Duration("poll-interval", 2*time.Second, "archive poll interval")
		machineName = fs.String("machine", "bluewaters", "machine model: bluewaters or small")
		par         = fs.Int("parallelism", 0, "ingestion/attribution worker count (0 = GOMAXPROCS)")
		mode        = fs.String("parse-mode", "lenient", "malformed-input policy: lenient or strict")
		rules       = fs.String("rules", "", "optional classifier rule file (replaces the built-in taxonomy rules)")
		validate    = fs.Bool("validate-rules", true, "lint -rules files and reject rule sets with error-severity findings")
		timezone    = fs.String("tz", "UTC", "accounting timestamp zone")
		reqTimeout  = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline for query endpoints")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get())
		return nil
	}
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	if *poll <= 0 {
		return fmt.Errorf("-poll-interval must be positive")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	var mc logdiver.MachineConfig
	switch *machineName {
	case "bluewaters":
		mc = logdiver.BlueWaters()
	case "small":
		mc = logdiver.SmallMachine()
	default:
		return fmt.Errorf("unknown machine %q", *machineName)
	}
	top, err := logdiver.NewTopology(mc)
	if err != nil {
		return err
	}
	loc, err := time.LoadLocation(*timezone)
	if err != nil {
		return fmt.Errorf("timezone: %w", err)
	}
	parseMode, err := logdiver.ParseModeFromString(*mode)
	if err != nil {
		return err
	}
	opts := logdiver.Options{Parallelism: *par, ParseMode: parseMode}
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			return err
		}
		parsed, err := taxonomy.ReadRuleFile(f)
		f.Close()
		if err != nil {
			return err
		}
		if *validate {
			cls, findings, err := rulecheck.NewValidatedClassifier(parsed, rulecheck.Options{})
			for _, fd := range findings {
				logger.Warn("rule finding", "file", *rules, "finding", fd.String())
			}
			if err != nil {
				return fmt.Errorf("%s: %w (rerun with -validate-rules=false to override)", *rules, err)
			}
			opts.Classifier = cls
		} else {
			opts.Classifier = taxonomy.NewClassifier(taxonomy.Rules(parsed))
		}
	}

	st := store.New()
	sy, err := store.NewSyncer(store.SyncerConfig{
		Tailer:   store.NewTailer(*dataDir),
		Store:    st,
		Topology: top,
		Location: loc,
		Options:  opts,
	})
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Store:          st,
		Version:        version.Get(),
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(l.Addr().String())
	}
	logger.Info("logdiverd starting",
		"version", version.Get().String(),
		"listen", l.Addr().String(),
		"data_dir", *dataDir,
		"machine", *machineName,
		"poll_interval", poll.String(),
		"parse_mode", parseMode.String(),
	)

	// Ingestion loop: one goroutine owns the Syncer; the first round runs
	// immediately so /v1/health turns ready without waiting a full tick.
	syncDone := make(chan error, 1)
	go func() {
		defer close(syncDone)
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		for {
			installed, err := sy.Sync()
			if err != nil {
				// A strict-mode parse failure poisons the pipeline: there
				// is no way to serve correct numbers past corrupt input,
				// so surface it and stop the daemon.
				syncDone <- fmt.Errorf("sync: %w", err)
				return
			}
			if installed {
				snap := st.Current()
				logger.Info("snapshot installed",
					"epoch", snap.Epoch,
					"runs", len(snap.Result.Runs),
					"events", len(snap.Result.Events),
					"reattributed", snap.Ingest.Reattributed,
					"build_ms", snap.Ingest.BuildDuration.Milliseconds(),
				)
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l, *drain) }()

	var firstErr error
	select {
	case err := <-syncDone:
		firstErr = err
		stop() // bring the HTTP server down too
		<-serveDone
	case err := <-serveDone:
		firstErr = err
		stop()
		<-syncDone
	}
	logger.Info("logdiverd stopped")
	return firstErr
}
