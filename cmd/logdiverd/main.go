// Command logdiverd is the online serving daemon: it tails the growing log
// archives of a data directory, keeps an incrementally updated analysis of
// every application run, and serves the study's views over HTTP.
//
// Usage:
//
//	logdiverd -data-dir ./archive [-listen :8080] [-poll-interval 2s]
//	    [-machine bluewaters|small] [-parallelism N]
//	    [-parse-mode lenient|strict] [-rules site-rules.txt] [-tz UTC]
//	    [-request-timeout 10s] [-state-dir ./state] [-state-interval 1m]
//	logdiverd -fleet-config fleet.conf [-fleet-sync-concurrency 4] [...]
//	logdiverd -version
//
// The daemon polls -data-dir every -poll-interval for growth of
// accounting.log, apsys.log and syslog.log (the names `logdiver generate`
// writes; absent files are treated as empty until they appear). Each poll
// that finds new lines is appended to the incremental pipeline, the
// affected time window is re-attributed, and a new immutable snapshot is
// published under the next epoch. Queries are answered from the latest
// snapshot without locking; every response carries its epoch.
//
// With -state-dir the daemon is durable: after snapshot installs (at most
// every -state-interval) and again on shutdown it writes its full analysis
// state — pipeline, tail offsets, epoch — crash-safely to
// <state-dir>/state.ldv, and on boot it warm-starts from that file in
// milliseconds instead of re-ingesting history, resuming the tail from the
// persisted offsets. An unusable state file (torn, corrupted, version-
// skewed, or written under different configuration) falls back to a cold
// rebuild in lenient mode and is a startup error in strict mode; either
// way /v1/health reports the boot provenance under "restore" and /metrics
// exposes it as logdiver_warm_restart. Inspect a state file offline with
// `logdiver state`.
//
// With -fleet-config the daemon scales from one machine to a fleet: the
// config file declares one [shard NAME] section per machine (archive dir,
// machine profile, optional per-shard state dir and zone), and the daemon
// runs one incremental pipeline per shard, folding every sync round into a
// single merged fleet snapshot carrying the composite per-shard epoch
// vector. /v1/fleet/{outcomes,scaling,mtti,categories} serve the merged
// view (?machine=NAME narrows to one shard), /v1/health grows a per-shard
// section and /metrics per-shard gauges. A shard whose archives fail keeps
// its last good snapshot in the merged view, marked partial, so one
// machine's outage never takes down the fleet's query plane. -fleet-config
// is mutually exclusive with -data-dir and -state-dir (per-shard state dirs
// come from the config file).
//
// Endpoints: /v1/health, /v1/outcomes, /v1/scaling?class=xe|xk, /v1/mtti,
// /v1/categories, /v1/runs/{apid}, /v1/fleet/* (fleet mode), and Prometheus
// text metrics at /metrics.
//
// SIGINT/SIGTERM stop the poll loop, persist the state (when -state-dir is
// set) and drain in-flight requests before exit. Logs are structured JSON
// on stderr.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"logdiver"
	"logdiver/internal/fleet"
	"logdiver/internal/persist"
	"logdiver/internal/rulecheck"
	"logdiver/internal/serve"
	"logdiver/internal/store"
	"logdiver/internal/taxonomy"
	"logdiver/internal/version"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "logdiverd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. onListen, when non-nil, receives the
// bound listener address before serving begins (tests use it to learn the
// ephemeral port).
func run(args []string, onListen func(addr string)) error {
	fs := flag.NewFlagSet("logdiverd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", ":8080", "HTTP listen address")
		dataDir     = fs.String("data-dir", "", "directory with accounting.log, apsys.log, syslog.log (single-machine mode)")
		fleetConf   = fs.String("fleet-config", "", "fleet config file with one [shard NAME] section per machine (fleet mode; mutually exclusive with -data-dir)")
		fleetConc   = fs.Int("fleet-sync-concurrency", 4, "how many shards ingest concurrently during a fleet sync round")
		poll        = fs.Duration("poll-interval", 2*time.Second, "archive poll interval")
		machineName = fs.String("machine", "bluewaters", "machine model: bluewaters or small")
		par         = fs.Int("parallelism", 0, "ingestion/attribution worker count (0 = GOMAXPROCS)")
		mode        = fs.String("parse-mode", "lenient", "malformed-input policy: lenient or strict")
		rules       = fs.String("rules", "", "optional classifier rule file (replaces the built-in taxonomy rules)")
		validate    = fs.Bool("validate-rules", true, "lint -rules files and reject rule sets with error-severity findings")
		timezone    = fs.String("tz", "UTC", "accounting timestamp zone")
		reqTimeout  = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline for query endpoints")
		cache       = fs.Bool("cache", true, "serve query responses from the per-epoch pre-encoded cache")
		rateLimit   = fs.Float64("rate-limit", 0, "per-client requests/second on the data endpoints (0 = no rate limiting; excess gets 429 + Retry-After)")
		rateBurst   = fs.Int("rate-burst", 0, "rate-limit token-bucket burst (0 = 2x the rate)")
		maxInflight = fs.Int("max-inflight", 0, "bound on concurrently executing data-endpoint requests (0 = unbounded; excess gets immediate 503 + Retry-After)")
		retryAfter  = fs.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint sent with 503 concurrency sheds")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		stateDir    = fs.String("state-dir", "", "directory for durable state (empty = no persistence, cold rebuild on every start)")
		stateEvery  = fs.Duration("state-interval", time.Minute, "minimum interval between periodic state persists")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get())
		return nil
	}
	if *dataDir == "" && *fleetConf == "" {
		return fmt.Errorf("one of -data-dir or -fleet-config is required")
	}
	if *dataDir != "" && *fleetConf != "" {
		return fmt.Errorf("-data-dir and -fleet-config are mutually exclusive")
	}
	if *fleetConf != "" && *stateDir != "" {
		return fmt.Errorf("-state-dir does not apply in fleet mode: set state-dir per shard in %s", *fleetConf)
	}
	if *poll <= 0 {
		return fmt.Errorf("-poll-interval must be positive")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	parseMode, err := logdiver.ParseModeFromString(*mode)
	if err != nil {
		return err
	}
	opts := logdiver.Options{Parallelism: *par, ParseMode: parseMode}
	rulesID := persist.RulesBuiltin
	if *rules != "" {
		raw, err := os.ReadFile(*rules)
		if err != nil {
			return err
		}
		rulesID = persist.HashRules(raw)
		parsed, err := taxonomy.ReadRuleFile(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		if *validate {
			cls, findings, err := rulecheck.NewValidatedClassifier(parsed, rulecheck.Options{})
			for _, fd := range findings {
				logger.Warn("rule finding", "file", *rules, "finding", fd.String())
			}
			if err != nil {
				return fmt.Errorf("%s: %w (rerun with -validate-rules=false to override)", *rules, err)
			}
			opts.Classifier = cls
		} else {
			opts.Classifier = taxonomy.NewClassifier(taxonomy.Rules(parsed))
		}
	}

	srvCfg := serve.Config{
		Version:        version.Get(),
		RequestTimeout: *reqTimeout,
		DisableCache:   !*cache,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
		MaxInFlight:    *maxInflight,
		RetryAfter:     *retryAfter,
	}

	var (
		// Single-machine mode runtime.
		st        *store.Store
		sy        *store.Syncer
		statePath string
		restore   = &serve.RestoreInfo{Mode: "cold", Detail: "persistence disabled (no -state-dir)"}
		fp        persist.Fingerprint
		// Fleet mode runtime.
		mgr *fleet.Manager
	)
	if *fleetConf != "" {
		fcfg, err := fleet.LoadConfig(*fleetConf)
		if err != nil {
			return err
		}
		mgr, err = fleet.NewManager(fleet.ManagerConfig{
			Config:          fcfg,
			Options:         opts,
			TimeZone:        *timezone,
			RulesID:         rulesID,
			SyncConcurrency: *fleetConc,
			StateInterval:   *stateEvery,
			Logf: func(format string, args ...any) {
				logger.Warn(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return err
		}
		srvCfg.Fleet = mgr
	} else {
		var mc logdiver.MachineConfig
		switch *machineName {
		case "bluewaters":
			mc = logdiver.BlueWaters()
		case "small":
			mc = logdiver.SmallMachine()
		default:
			return fmt.Errorf("unknown machine %q", *machineName)
		}
		top, err := logdiver.NewTopology(mc)
		if err != nil {
			return err
		}
		loc, err := time.LoadLocation(*timezone)
		if err != nil {
			return fmt.Errorf("timezone: %w", err)
		}

		// Durable state: try to warm-start from the state dir. An unusable
		// state file degrades to a cold rebuild in lenient mode (with the
		// reason logged and reported) and refuses to start in strict mode.
		var resume *store.SyncerState
		if *stateDir != "" {
			if err := os.MkdirAll(*stateDir, 0o755); err != nil {
				return fmt.Errorf("state dir: %w", err)
			}
			statePath = filepath.Join(*stateDir, persist.StateFile)
			fp = persist.Fingerprint{
				Machine:   *machineName,
				Nodes:     top.NumNodes(),
				ParseMode: parseMode.String(),
				Rules:     rulesID,
				TimeZone:  *timezone,
			}
			resume, restore, err = loadState(logger, statePath, fp, parseMode)
			if err != nil {
				return err
			}
		}

		st = store.New()
		if restore.Epoch > 0 {
			// Continue the persisted epoch sequence even on a cold fallback
			// whose file loaded: clients rely on epochs never going backward
			// across a restart of the same state dir.
			if err := st.Restore(restore.Epoch); err != nil {
				return err
			}
		}
		syCfg := store.SyncerConfig{
			Tailer:   store.NewTailer(*dataDir),
			Store:    st,
			Topology: top,
			Location: loc,
			Options:  opts,
			Resume:   resume,
		}
		sy, err = store.NewSyncer(syCfg)
		if err != nil && resume != nil {
			// The file was structurally sound but its state failed restore
			// validation: same policy as a corrupt file.
			if parseMode == logdiver.ParseStrict {
				return fmt.Errorf("state restore: %s: %w (strict mode refuses to guess: delete the state file to rebuild cold, or restart with -parse-mode lenient)", statePath, err)
			}
			logger.Warn("state restore failed; rebuilding cold from the archives",
				"path", statePath, "reason", err.Error())
			restore = &serve.RestoreInfo{Mode: "cold-fallback", Detail: err.Error(), Epoch: restore.Epoch}
			syCfg.Resume = nil
			syCfg.Tailer = store.NewTailer(*dataDir)
			sy, err = store.NewSyncer(syCfg)
		}
		if err != nil {
			return err
		}
		srvCfg.Store = st
		srvCfg.Restore = restore
	}
	srv, err := serve.New(srvCfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(l.Addr().String())
	}
	if mgr != nil {
		logger.Info("logdiverd starting",
			"version", version.Get().String(),
			"listen", l.Addr().String(),
			"fleet_config", *fleetConf,
			"shards", mgr.Machines(),
			"poll_interval", poll.String(),
			"parse_mode", parseMode.String(),
		)
	} else {
		logger.Info("logdiverd starting",
			"version", version.Get().String(),
			"listen", l.Addr().String(),
			"data_dir", *dataDir,
			"machine", *machineName,
			"poll_interval", poll.String(),
			"parse_mode", parseMode.String(),
			"restore", restore.Mode,
			"restore_epoch", restore.Epoch,
		)
	}

	// Ingestion loop: one goroutine owns the Syncer (or the fleet manager);
	// the first round runs immediately so /v1/health turns ready without
	// waiting a full tick.
	syncDone := make(chan error, 1)
	go func() {
		defer close(syncDone)
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		var lastPersist time.Time
		for {
			if mgr != nil {
				// Fleet rounds never stop the daemon: a shard whose sync
				// fails is marked failed and the merged view turns partial;
				// the rest of the fleet keeps serving.
				round := mgr.SyncRound(ctx)
				for _, shr := range round.Shards {
					if shr.Err != nil {
						logger.Warn("shard sync failed",
							"shard", shr.Name, "error", shr.Err.Error())
					}
				}
				if round.Installed {
					snap := mgr.FleetStore().Current()
					logger.Info("fleet snapshot installed",
						"fleet_epoch", round.FleetEpoch,
						"runs", len(snap.Result.Runs),
						"partial", snap.Partial,
					)
				}
			} else {
				installed, err := sy.Sync()
				if err != nil {
					// A strict-mode parse failure poisons the pipeline: there
					// is no way to serve correct numbers past corrupt input,
					// so surface it and stop the daemon. The poisoned state is
					// deliberately NOT persisted.
					syncDone <- fmt.Errorf("sync: %w", err)
					return
				}
				if installed {
					snap := st.Current()
					logger.Info("snapshot installed",
						"epoch", snap.Epoch,
						"runs", len(snap.Result.Runs),
						"events", len(snap.Result.Events),
						"reattributed", snap.Ingest.Reattributed,
						"build_ms", snap.Ingest.BuildDuration.Milliseconds(),
					)
					if statePath != "" && time.Since(lastPersist) >= *stateEvery {
						persistState(logger, sy, st, fp, statePath)
						lastPersist = time.Now()
					}
				}
			}
			select {
			case <-ctx.Done():
				// Final persist on shutdown, interval notwithstanding: the
				// state on disk should match the last snapshot served.
				if mgr != nil {
					mgr.PersistAll()
				} else if statePath != "" {
					persistState(logger, sy, st, fp, statePath)
				}
				return
			case <-tick.C:
			}
		}
	}()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l, *drain) }()

	var firstErr error
	select {
	case err := <-syncDone:
		firstErr = err
		stop() // bring the HTTP server down too
		<-serveDone
	case err := <-serveDone:
		firstErr = err
		stop()
		<-syncDone
	}
	logger.Info("logdiverd stopped")
	return firstErr
}

// loadState reads the state file and decides the boot mode. A missing file
// is a normal cold start. Any other failure — structural corruption,
// version skew, a configuration fingerprint mismatch — degrades to a cold
// rebuild in lenient mode (logged, and reported via RestoreInfo) and is a
// startup error naming the file and reason in strict mode.
func loadState(logger *slog.Logger, path string, fp persist.Fingerprint, mode logdiver.ParseMode) (*store.SyncerState, *serve.RestoreInfo, error) {
	ld, err := persist.Load(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, &serve.RestoreInfo{Mode: "cold", Detail: "no state file yet"}, nil
	}
	reject := func(reason error) (*store.SyncerState, *serve.RestoreInfo, error) {
		if mode == logdiver.ParseStrict {
			return nil, nil, fmt.Errorf("state restore: %w (strict mode refuses to guess: delete the state file to rebuild cold, or restart with -parse-mode lenient)", reason)
		}
		logger.Warn("state restore failed; rebuilding cold from the archives",
			"path", path, "reason", reason.Error())
		info := &serve.RestoreInfo{Mode: "cold-fallback", Detail: reason.Error()}
		if ld != nil {
			info.Epoch = ld.Epoch
		}
		return nil, info, nil
	}
	if err != nil {
		return reject(err)
	}
	if diff := ld.Fingerprint.Diff(fp); diff != "" {
		return reject(fmt.Errorf("%s: configuration changed since the state was written: %s", path, diff))
	}
	return ld.Syncer, &serve.RestoreInfo{Mode: "warm", Epoch: ld.Epoch, SavedAt: ld.SavedAt}, nil
}

// persistState exports the syncer and writes the state file crash-safely.
// Failures are logged, never fatal: a daemon that cannot persist still
// serves correctly, it just pays a cold rebuild on its next start.
func persistState(logger *slog.Logger, sy *store.Syncer, st *store.Store, fp persist.Fingerprint, path string) {
	began := time.Now()
	sst, err := sy.ExportState()
	if err == nil {
		err = persist.Save(path, &persist.State{
			SavedAt:     time.Now(),
			Epoch:       st.Epoch(),
			Fingerprint: fp,
			Syncer:      sst,
		})
	}
	if err != nil {
		logger.Warn("state persist failed", "path", path, "error", err.Error())
		return
	}
	logger.Info("state persisted",
		"path", path,
		"epoch", st.Epoch(),
		"took_ms", time.Since(began).Milliseconds(),
	)
}
