// Command mdcheck is a dependency-free markdown link checker for the
// repository's documentation set.
//
// Usage:
//
//	mdcheck README.md DESIGN.md OPERATIONS.md EXPERIMENTS.md
//
// For every inline link or image `[text](target)` it verifies that
//
//   - a relative path target resolves to an existing file or directory
//     (relative to the markdown file's own directory), and
//   - a `#fragment` target — bare or attached to a relative .md path —
//     names a real heading in the target document, using GitHub's
//     heading-to-anchor slug rules (lowercase, punctuation stripped,
//     spaces to dashes, -N suffixes for duplicates).
//
// External targets (http, https, mailto) are deliberately NOT fetched:
// CI must not fail on someone else's outage. Targets climbing out of the
// document's directory ("../...") are skipped too — GitHub renders those
// as site-relative routes (the `../../actions/...` CI-badge idiom), not
// as files of this repository. Links inside fenced code blocks and
// inline code spans are ignored. Findings print as file:line: message,
// and any finding makes the command exit 1.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	problems := 0
	for _, path := range os.Args[1:] {
		findings, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", problems)
		os.Exit(1)
	}
}

// linkRE matches inline links and images. Targets with spaces or nested
// parens are out of scope (the repo's docs do not use them).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// checkFile returns one finding string per broken link in path.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var findings []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatchIndex(stripCodeSpans(line), -1) {
			target := stripCodeSpans(line)[m[2]:m[3]]
			if msg := checkTarget(dir, path, target); msg != "" {
				findings = append(findings, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return findings, nil
}

// stripCodeSpans blanks out `inline code` so link-looking text inside it is
// not checked. Lengths are preserved so indexes still line up.
func stripCodeSpans(line string) string {
	out := []byte(line)
	inSpan := false
	for i := 0; i < len(out); i++ {
		if out[i] == '`' {
			inSpan = !inSpan
			continue
		}
		if inSpan {
			out[i] = ' '
		}
	}
	return string(out)
}

// checkTarget validates one link target and returns a problem description,
// or "" when the target resolves.
func checkTarget(dir, srcPath, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external: not checked
	case strings.HasPrefix(target, "../"):
		return "" // site-relative route (GitHub badge idiom): not a repo file
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := srcPath
	if file != "" {
		resolved = filepath.Join(dir, file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors into non-markdown files are not checkable
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !anchors[frag] {
		return fmt.Sprintf("broken link %q: no heading with anchor #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchors for the headings
// of a markdown file.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue // not a heading ("#foo" needs a space to be one)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors, nil
}

// slugify converts a heading to its GitHub anchor: lowercase, markdown
// emphasis/code markers and punctuation removed, spaces to dashes.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
		// Everything else (punctuation, backticks, slashes) is dropped.
	}
	return b.String()
}
