package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFileCleanDocument(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "other.md"), "# Other Doc\n\n## A Sub-Section!\n")
	write(t, filepath.Join(dir, "code.go"), "package x\n")
	doc := strings.Join([]string{
		"# Title",
		"",
		"See [other](other.md) and [its section](other.md#a-sub-section).",
		"Self link: [above](#title). External: [go](https://go.dev).",
		"A [source file](code.go) and a [dir](.) link.",
		"",
		"```",
		"[not a link](missing.md)",
		"```",
		"And `[also not](gone.md)` inline code.",
	}, "\n")
	main := filepath.Join(dir, "main.md")
	write(t, main, doc)
	findings, err := checkFile(main)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestCheckFileBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "other.md"), "# Other\n")
	doc := strings.Join([]string{
		"# Title",
		"[missing file](nope.md)",
		"[missing anchor](other.md#no-such-heading)",
		"[missing self anchor](#nowhere)",
	}, "\n")
	main := filepath.Join(dir, "main.md")
	write(t, main, doc)
	findings, err := checkFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	for i, want := range []string{"main.md:2", "main.md:3", "main.md:4"} {
		if !strings.Contains(findings[i], want) {
			t.Errorf("finding %d = %q, want position %s", i, findings[i], want)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Simple Heading":        "simple-heading",
		"With `code` & Symbols": "with-code--symbols",
		"/v1/health":            "v1health",
		"state-dir Layout":      "state-dir-layout",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.md")
	write(t, path, "# Setup\n\n## Setup\n\n## Setup\n")
	anchors, err := headingAnchors(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"setup", "setup-1", "setup-2"} {
		if !anchors[want] {
			t.Errorf("anchor %q missing; have %v", want, anchors)
		}
	}
}

func TestRepoDocsLinkClean(t *testing.T) {
	// The same invariant the CI link-check step enforces: the operator and
	// design docs must not contain broken relative links.
	root := "../.."
	for _, name := range []string{"README.md", "DESIGN.md", "OPERATIONS.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		path := filepath.Join(root, name)
		if _, err := os.Stat(path); err != nil {
			t.Errorf("doc %s missing: %v", name, err)
			continue
		}
		findings, err := checkFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
