package logdiver

import (
	"logdiver/internal/experiments"
)

// Experiment anchor constants from the paper's abstract, re-exported for
// callers that want to compare measured values programmatically.
const (
	// AnchorSystemFraction is the fraction of runs failing for system
	// reasons (lesson 1).
	AnchorSystemFraction = experiments.AnchorSystemFraction
	// AnchorLostNodeHours is the node-hours share consumed by those runs.
	AnchorLostNodeHours = experiments.AnchorLostNodeHours
	// AnchorXEProb10k and AnchorXEProb22k bracket the XE scaling curve.
	AnchorXEProb10k = experiments.AnchorXEProb10k
	AnchorXEProb22k = experiments.AnchorXEProb22k
	// AnchorXKProb2k and AnchorXKProb4224 bracket the XK scaling curve.
	AnchorXKProb2k   = experiments.AnchorXKProb2k
	AnchorXKProb4224 = experiments.AnchorXKProb4224
)

// Experiments regenerates every evaluation artifact of the study: tables
// E1-E10 plus the A1/A2 methodological ablations. Truth-dependent tables
// (E9, A1, A2) require the dataset's ground truth; pass nil to omit them
// (as when analyzing real archives without ground truth).
func Experiments(res *Result, top *Topology, truth map[uint64]Truth) ([]*Table, error) {
	return experiments.All(res, top, truth)
}

// ExperimentE2 regenerates only the headline outcome table.
func ExperimentE2(res *Result) *Table { return experiments.E2Outcomes(res) }

// ExperimentE4 regenerates the XE failure-probability-versus-scale curve.
func ExperimentE4(res *Result) (*Table, error) { return experiments.E4ScalingXE(res) }

// ExperimentE5 regenerates the XK failure-probability-versus-scale curve.
func ExperimentE5(res *Result) (*Table, error) { return experiments.E5ScalingXK(res) }

// ExperimentE9 regenerates the detection-coverage comparison (requires
// ground truth).
func ExperimentE9(res *Result, truth map[uint64]Truth) *Table {
	return experiments.E9Detection(res, truth)
}
