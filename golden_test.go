package logdiver_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logdiver"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestExperimentTablesGolden pins the rendered E1-E3 report tables from a
// full text-archive analysis against a golden file. The whole chain —
// synthesizer determinism, archive serialization, parsing, attribution and
// table rendering — must reproduce byte-for-byte; regenerate deliberately
// with `go test -run TestExperimentTablesGolden -update .` after reviewing
// the diff.
func TestExperimentTablesGolden(t *testing.T) {
	ds := smallDataset(t, 2, 6)
	var acc, aps, sys strings.Builder
	if err := ds.WriteAccounting(&acc); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&sys); err != nil {
		t.Fatal(err)
	}
	res, err := logdiver.Analyze(logdiver.Archives{
		Accounting: strings.NewReader(acc.String()),
		Apsys:      strings.NewReader(aps.String()),
		Syslog:     strings.NewReader(sys.String()),
	}, ds.Topology, logdiver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := logdiver.Experiments(res, ds.Topology, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"E1": true, "E2": true, "E3": true}
	var buf bytes.Buffer
	var rendered int
	for _, tbl := range tables {
		if !want[tbl.ID] {
			continue
		}
		rendered++
		fmt.Fprintf(&buf, "== %s: %s ==\n", tbl.ID, tbl.Title)
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
		if err := tbl.RenderMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	if rendered != len(want) {
		t.Fatalf("rendered %d of %d expected tables", rendered, len(want))
	}

	golden := filepath.Join("testdata", "experiments_e1e2e3.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), wantBytes) {
		gotLines := strings.Split(buf.String(), "\n")
		wantLines := strings.Split(string(wantBytes), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("golden mismatch at line %d:\n got  %q\n want %q\n(rerun with -update after reviewing)", i+1, g, w)
			}
		}
		t.Fatal("golden mismatch (length only)")
	}
}
