package logdiver_test

import (
	"fmt"
	"strings"
	"testing"

	"logdiver"
)

// smallDataset synthesizes a fast dataset on the small machine.
func smallDataset(t testing.TB, days int, seed int64) *logdiver.Dataset {
	t.Helper()
	cfg := logdiver.ScaledGeneratorConfig(days)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Seed = seed
	cfg.Workload.JobsPerDay = 300
	cfg.Workload.XECapabilityJobsPerDay = 2
	cfg.Workload.XKCapabilityJobsPerDay = 1
	cfg.Workload.XECapabilitySizes = []int{256, 512}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96
	cfg.Rates.NodeFatalPerNodeHour *= 20
	cfg.Rates.GPUFatalPerNodeHour *= 100
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := smallDataset(t, 3, 5)
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(ds.Runs) {
		t.Fatalf("runs: %d vs %d", len(res.Runs), len(ds.Runs))
	}
	b := logdiver.Outcomes(res.Runs)
	if b.Total == 0 || b.SystemFailureFraction() <= 0 {
		t.Errorf("breakdown: %+v", b)
	}
	buckets, err := logdiver.FailureProbabilityByScale(res.Runs, logdiver.GeometricBuckets(512), logdiver.ClassXE)
	if err != nil {
		t.Fatal(err)
	}
	var populated int
	for _, bk := range buckets {
		populated += bk.Runs
	}
	if populated == 0 {
		t.Error("no runs in scale buckets")
	}
	cov := logdiver.DetectionCoverage(res.Runs, logdiver.TrueSystemFailures(ds), 0)
	if cov.TrueSystem == 0 {
		t.Error("no true system failures")
	}
	if cov.Rate() <= 0 || cov.Rate() > 1 {
		t.Errorf("coverage rate %v", cov.Rate())
	}
}

func TestPublicAPITextArchives(t *testing.T) {
	ds := smallDataset(t, 2, 6)
	var acc, aps, sys strings.Builder
	if err := ds.WriteAccounting(&acc); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteApsys(&aps); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteErrorLog(&sys); err != nil {
		t.Fatal(err)
	}
	res, err := logdiver.Analyze(logdiver.Archives{
		Accounting: strings.NewReader(acc.String()),
		Apsys:      strings.NewReader(aps.String()),
		Syslog:     strings.NewReader(sys.String()),
	}, ds.Topology, logdiver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(ds.Runs) {
		t.Errorf("runs: %d vs %d", len(res.Runs), len(ds.Runs))
	}
	if len(res.Jobs) != len(ds.Jobs) {
		t.Errorf("jobs: %d vs %d", len(res.Jobs), len(ds.Jobs))
	}
}

func TestPublicExperiments(t *testing.T) {
	ds := smallDataset(t, 3, 5)
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := logdiver.Experiments(res, ds.Topology, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 20 {
		t.Fatalf("got %d tables, want 20", len(tables))
	}
	var b strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&b); err != nil {
			t.Fatalf("render %s: %v", tbl.ID, err)
		}
	}
	if !strings.Contains(b.String(), "1.53%") {
		t.Error("anchor comparison missing from rendered output")
	}
	e2 := logdiver.ExperimentE2(res)
	if e2.ID != "E2" {
		t.Errorf("E2 id = %s", e2.ID)
	}
	if _, err := logdiver.ExperimentE4(res); err != nil {
		t.Fatal(err)
	}
	if _, err := logdiver.ExperimentE5(res); err != nil {
		t.Fatal(err)
	}
	if got := logdiver.ExperimentE9(res, ds.Truth); got.ID != "E9" {
		t.Errorf("E9 id = %s", got.ID)
	}
}

func TestAnchorsExported(t *testing.T) {
	if logdiver.AnchorSystemFraction != 0.0153 {
		t.Errorf("AnchorSystemFraction = %v", logdiver.AnchorSystemFraction)
	}
	if logdiver.AnchorXEProb22k/logdiver.AnchorXEProb10k < 20 {
		t.Error("XE anchors do not encode the 20x amplification")
	}
}

func ExampleOutcomes() {
	cfg := logdiver.ScaledGeneratorConfig(1)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Workload.JobsPerDay = 50
	cfg.Workload.XECapabilitySizes = []int{256}
	cfg.Workload.XKCapabilitySizes = []int{64}
	cfg.Workload.SmallSizeMax = 64
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	b := logdiver.Outcomes(res.Runs)
	fmt.Println(b.Total > 0)
	// Output: true
}
