// Package logdiver is a reproduction of the measurement system behind
// "Measuring and Understanding Extreme-Scale Application Resilience: A Field
// Study of 5,000,000 HPC Application Runs" (Di Martino, Kramer, Kalbarczyk,
// Iyer — DSN 2015). It provides:
//
//   - a LogDiver-style analysis pipeline that joins workload accounting
//     logs, ALPS application logs and syslog error archives to attribute
//     every application run's outcome (success / user failure / walltime /
//     system failure) to an error category;
//   - the full supporting substrate: a Cray XE/XK machine model with cname
//     topology, parsers and writers for all three log formats, an error
//     taxonomy and classifier, temporal/spatial log coalescing, a node-time
//     event index, and a statistics toolkit;
//   - a calibrated field-data synthesizer that stands in for the
//     proprietary Blue Waters archives, emitting raw logs in the native
//     formats plus a withheld ground truth; and
//   - an experiment harness regenerating every table and figure of the
//     study's evaluation.
//
// Quick start:
//
//	cfg := logdiver.ScaledGeneratorConfig(7) // one week of production
//	ds, err := logdiver.Generate(cfg)
//	// handle err
//	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
//	// handle err
//	b := logdiver.Outcomes(res.Runs)
//	fmt.Printf("system-failure fraction: %.2f%%\n", 100*b.SystemFailureFraction())
//
// The same pipeline consumes real text archives through Analyze, which
// reads Torque accounting, apsys and syslog streams.
package logdiver

import (
	"logdiver/internal/core"
	"logdiver/internal/correlate"
	"logdiver/internal/errlog"
	"logdiver/internal/gen"
	"logdiver/internal/machine"
	"logdiver/internal/metrics"
	"logdiver/internal/parse"
	"logdiver/internal/report"
	"logdiver/internal/taxonomy"
)

// Re-exported types. Aliases keep the public surface in one place while the
// implementations live in focused internal packages.
type (
	// MachineConfig sizes the modeled Cray system.
	MachineConfig = machine.Config
	// Topology describes every node of the machine.
	Topology = machine.Topology
	// NodeClass distinguishes XE (CPU), XK (hybrid) and service nodes.
	NodeClass = machine.NodeClass
	// NodeID is a dense machine-wide node index.
	NodeID = machine.NodeID

	// GeneratorConfig configures the field-data synthesizer.
	GeneratorConfig = gen.Config
	// Dataset is a synthesized archive plus ground truth.
	Dataset = gen.Dataset
	// Truth is the per-run ground-truth record.
	Truth = gen.Truth

	// Archives bundles the three raw log streams.
	Archives = core.Archives
	// Options tunes the analysis pipeline.
	Options = core.Options
	// Result is the pipeline output.
	Result = core.Result
	// ParseStats reports archive hygiene.
	ParseStats = core.ParseStats
	// ParseMode selects the malformed-input policy (Options.ParseMode).
	ParseMode = parse.Mode
	// ParseError is the typed malformed-line error strict parsing surfaces,
	// carrying the archive name, line number and failure kind.
	ParseError = parse.Error

	// AttributedRun is an application run with its outcome attribution.
	AttributedRun = correlate.AttributedRun
	// Outcome classifies how a run ended.
	Outcome = correlate.Outcome
	// CorrelateConfig tunes the attribution join.
	CorrelateConfig = correlate.Config

	// Event is one classified error event.
	Event = errlog.Event
	// Category is an error-taxonomy leaf.
	Category = taxonomy.Category
	// Severity grades event disruptiveness.
	Severity = taxonomy.Severity

	// OutcomeBreakdown aggregates runs by outcome.
	OutcomeBreakdown = metrics.OutcomeBreakdown
	// ScaleBucket is one point of a failure-probability curve.
	ScaleBucket = metrics.ScaleBucket
	// Coverage quantifies detection coverage against ground truth.
	Coverage = metrics.Coverage

	// Table is a rendered experiment artifact.
	Table = report.Table
)

// Node classes.
const (
	ClassXE      = machine.ClassXE
	ClassXK      = machine.ClassXK
	ClassService = machine.ClassService
)

// Outcomes.
const (
	OutcomeSuccess       = correlate.OutcomeSuccess
	OutcomeUserFailure   = correlate.OutcomeUserFailure
	OutcomeWalltime      = correlate.OutcomeWalltime
	OutcomeSystemFailure = correlate.OutcomeSystemFailure
)

// Parse modes. ParseLenient (the Options zero value) skips malformed lines
// while accounting them in ParseStats; ParseStrict fails Analyze on the
// first malformed line with a *ParseError naming archive and line.
const (
	ParseLenient = parse.Lenient
	ParseStrict  = parse.Strict
)

// ParseModeFromString parses the -parse-mode flag vocabulary ("lenient",
// "strict"; the empty string means lenient).
func ParseModeFromString(s string) (ParseMode, error) { return parse.ModeFromString(s) }

// BlueWaters returns the measured system's machine configuration: 288
// cabinets, 22,636 usable XE nodes and 4,224 XK hybrid nodes.
func BlueWaters() MachineConfig { return machine.BlueWaters() }

// SmallMachine returns a 1,536-node configuration for tests and examples.
func SmallMachine() MachineConfig { return machine.Small() }

// NewTopology builds the node-level topology for a machine configuration.
func NewTopology(cfg MachineConfig) (*Topology, error) { return machine.New(cfg) }

// DefaultGeneratorConfig returns the full 518-day Blue Waters-shaped
// synthesizer configuration used for the headline experiments.
func DefaultGeneratorConfig() GeneratorConfig { return gen.Default() }

// ScaledGeneratorConfig returns the default configuration scaled to the
// given number of production days.
func ScaledGeneratorConfig(days int) GeneratorConfig { return gen.Scaled(days) }

// SmallGeneratorConfig returns a configuration for the small 1,536-node
// machine with a workload rescaled to fit it: the setup used by the
// examples, the serving smoke tests and CI, where a few days generate and
// analyze in seconds.
func SmallGeneratorConfig(days int) GeneratorConfig { return gen.Small(days) }

// Generate synthesizes a dataset: workload, fault timeline, logs and truth.
func Generate(cfg GeneratorConfig) (*Dataset, error) { return gen.Generate(cfg) }

// Analyze runs the pipeline over raw text archives.
func Analyze(a Archives, top *Topology, opts Options) (*Result, error) {
	return core.Analyze(a, top, opts)
}

// AnalyzeDataset runs the pipeline over an in-memory dataset, skipping
// serialization. Attribution is identical to the text path (tested).
func AnalyzeDataset(ds *Dataset, opts Options) (*Result, error) {
	return core.AnalyzeParsed(ds.Jobs, ds.Runs, ds.Events, ds.Topology, opts)
}

// Outcomes aggregates attributed runs by outcome: the headline breakdown.
func Outcomes(runs []AttributedRun) OutcomeBreakdown { return metrics.Outcomes(runs) }

// FailureProbabilityByScale estimates P(system failure) per placement-size
// bucket with Wilson confidence intervals. bounds are ascending bucket
// edges; classFilter restricts the population (0 accepts every class).
func FailureProbabilityByScale(runs []AttributedRun, bounds []int, classFilter NodeClass) ([]ScaleBucket, error) {
	return metrics.FailureProbabilityByScale(runs, bounds, classFilter)
}

// GeometricBuckets returns power-of-two bucket edges up to max.
func GeometricBuckets(max int) []int { return metrics.GeometricBuckets(max) }

// DetectionCoverage compares attribution with ground truth for one node
// class (0 accepts every class). truth maps apid to "truly system-caused".
func DetectionCoverage(runs []AttributedRun, truth map[uint64]bool, classFilter NodeClass) Coverage {
	return metrics.DetectionCoverage(runs, truth, classFilter)
}

// TrueSystemFailures projects a dataset's ground truth onto the boolean
// form DetectionCoverage consumes.
func TrueSystemFailures(ds *Dataset) map[uint64]bool {
	out := make(map[uint64]bool, len(ds.Truth))
	for id, tr := range ds.Truth {
		out[id] = tr.Outcome == OutcomeSystemFailure
	}
	return out
}
