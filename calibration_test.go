package logdiver_test

// Calibration acceptance test: the headline claim of this reproduction is
// that the analysis pipeline, run over synthesized raw logs on the full
// Blue Waters topology, *measures* the paper's anchored numbers. This test
// generates ~100 days of production (a fifth of the paper's span) and
// asserts every anchor within generous statistical bands. It takes on the
// order of a minute; skip with -short.

import (
	"testing"

	"logdiver"
)

// fullDataset caches the expensive full-topology dataset across subtests.
func fullDataset(t *testing.T) (*logdiver.Dataset, *logdiver.Result) {
	t.Helper()
	cfg := logdiver.ScaledGeneratorConfig(100)
	cfg.Seed = 12345
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

func probeP(t *testing.T, runs []logdiver.AttributedRun, class logdiver.NodeClass, lo, hi int) (float64, int) {
	t.Helper()
	var n, f int
	for _, r := range runs {
		if r.Class != class || len(r.Nodes) < lo || len(r.Nodes) >= hi {
			continue
		}
		n++
		if r.Outcome == logdiver.OutcomeSystemFailure {
			f++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(f) / float64(n), n
}

func TestCalibrationAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs the full topology; skipped in -short")
	}
	ds, res := fullDataset(t)

	t.Run("headline fractions", func(t *testing.T) {
		b := logdiver.Outcomes(res.Runs)
		if got := b.SystemFailureFraction(); got < 0.008 || got > 0.024 {
			t.Errorf("system-failure fraction = %.4f, want near anchor %.4f (band [0.008,0.024])",
				got, logdiver.AnchorSystemFraction)
		}
		if got := b.SystemNodeHoursFraction(); got < 0.035 || got > 0.14 {
			t.Errorf("lost node-hours fraction = %.4f, want near anchor %.2f (band [0.035,0.14])",
				got, logdiver.AnchorLostNodeHours)
		}
	})

	t.Run("XE scaling curve", func(t *testing.T) {
		pMid, nMid := probeP(t, res.Runs, logdiver.ClassXE, 9000, 11000)
		pFull, nFull := probeP(t, res.Runs, logdiver.ClassXE, 19000, 23000)
		if nMid < 50 || nFull < 50 {
			t.Fatalf("too few probe runs: mid=%d full=%d", nMid, nFull)
		}
		if pFull < 0.07 || pFull > 0.30 {
			t.Errorf("P(XE full scale) = %.3f over %d runs, want near anchor %.3f",
				pFull, nFull, logdiver.AnchorXEProb22k)
		}
		if pMid > 0.05 {
			t.Errorf("P(XE ~10k) = %.3f over %d runs, want near anchor %.3f",
				pMid, nMid, logdiver.AnchorXEProb10k)
		}
		// The paper's lesson: dramatic amplification at full scale.
		floor := pMid
		if floor < 0.004 {
			floor = 0.004
		}
		if pFull/floor < 3 {
			t.Errorf("XE amplification %.1fx (%.3f -> %.3f), want >= 3x (paper: 20x)",
				pFull/floor, pMid, pFull)
		}
	})

	t.Run("XK scaling curve", func(t *testing.T) {
		pMid, nMid := probeP(t, res.Runs, logdiver.ClassXK, 1800, 2200)
		pFull, nFull := probeP(t, res.Runs, logdiver.ClassXK, 4000, 4300)
		if nMid < 30 || nFull < 30 {
			t.Fatalf("too few probe runs: mid=%d full=%d", nMid, nFull)
		}
		if pFull < 0.05 || pFull > 0.27 {
			t.Errorf("P(XK full scale) = %.3f over %d runs, want near anchor %.3f",
				pFull, nFull, logdiver.AnchorXKProb4224)
		}
		if pMid > 0.07 {
			t.Errorf("P(XK ~2k) = %.3f over %d runs, want near anchor %.3f",
				pMid, nMid, logdiver.AnchorXKProb2k)
		}
		if pFull <= pMid {
			t.Errorf("XK curve not increasing: %.3f -> %.3f", pMid, pFull)
		}
	})

	t.Run("hybrid detection gap", func(t *testing.T) {
		truth := logdiver.TrueSystemFailures(ds)
		xe := logdiver.DetectionCoverage(res.Runs, truth, logdiver.ClassXE)
		if xe.Rate() < 0.9 {
			t.Errorf("XE detection coverage = %.3f, want >= 0.9 (CPU errors are logged)", xe.Rate())
		}
		// The gap concentrates at scale, where GPU failures dominate the
		// XK failure mix.
		var xkFull []logdiver.AttributedRun
		for _, r := range res.Runs {
			if r.Class == logdiver.ClassXK && len(r.Nodes) >= 3000 {
				xkFull = append(xkFull, r)
			}
		}
		xk := logdiver.DetectionCoverage(xkFull, truth, logdiver.ClassXK)
		if xk.TrueSystem < 20 {
			t.Fatalf("too few full-scale XK system failures: %d", xk.TrueSystem)
		}
		if xk.Rate() >= xe.Rate() {
			t.Errorf("full-scale XK coverage %.3f >= XE coverage %.3f: detection gap missing",
				xk.Rate(), xe.Rate())
		}
		if xk.Rate() > 0.92 {
			t.Errorf("full-scale XK coverage %.3f, want < 0.92 (silent GPU deaths)", xk.Rate())
		}
	})

	t.Run("attribution accuracy", func(t *testing.T) {
		var trueSys, attributed, correct int
		for _, r := range res.Runs {
			isTrue := ds.Truth[r.ApID].Outcome == logdiver.OutcomeSystemFailure
			isAttr := r.Outcome == logdiver.OutcomeSystemFailure
			if isTrue {
				trueSys++
			}
			if isAttr {
				attributed++
				if isTrue {
					correct++
				}
			}
		}
		if trueSys == 0 || attributed == 0 {
			t.Fatal("no system failures to evaluate")
		}
		if prec := float64(correct) / float64(attributed); prec < 0.8 {
			t.Errorf("attribution precision = %.3f, want >= 0.8", prec)
		}
	})
}
