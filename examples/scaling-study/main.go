// Scaling study: reproduce the paper's second lesson — the dramatic
// increase in application failure probability at full machine scale — by
// synthesizing production on the full Blue Waters topology and measuring
// P(system failure) as a function of placement size for XE and XK
// applications.
//
// Run with -days to trade runtime for statistical power (each anchor point
// gains roughly two runs per day of synthesized production).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scaling-study:", err)
		os.Exit(1)
	}
}

func run() error {
	days := flag.Int("days", 45, "production days to synthesize")
	flag.Parse()

	t0 := time.Now()
	cfg := logdiver.ScaledGeneratorConfig(*days)
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%d runs over %d synthesized days (%v)\n\n",
		len(res.Runs), *days, time.Since(t0).Round(time.Second))

	for _, study := range []struct {
		name   string
		class  logdiver.NodeClass
		max    int
		anchor [2]float64 // low-scale, full-scale paper anchors
	}{
		{"XE (CPU) applications", logdiver.ClassXE, 22636,
			[2]float64{logdiver.AnchorXEProb10k, logdiver.AnchorXEProb22k}},
		{"XK (hybrid) applications", logdiver.ClassXK, 4224,
			[2]float64{logdiver.AnchorXKProb2k, logdiver.AnchorXKProb4224}},
	} {
		buckets, err := logdiver.FailureProbabilityByScale(
			res.Runs, logdiver.GeometricBuckets(study.max), study.class)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", study.name)
		fmt.Printf("  %-14s %8s %9s %9s\n", "nodes", "runs", "P(fail)", "95% CI")
		for _, b := range buckets {
			if b.Runs == 0 {
				continue
			}
			fmt.Printf("  %-14s %8d %9.4f [%.4f, %.4f]\n",
				b.Label(), b.Runs, b.Prob.P, b.Prob.Lo, b.Prob.Hi)
		}
		fmt.Printf("  paper anchors: %.3f at routine scale -> %.3f at full scale\n\n",
			study.anchor[0], study.anchor[1])
	}
	return nil
}
