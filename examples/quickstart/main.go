// Quickstart: synthesize a few days of field data, run the LogDiver-style
// pipeline over it, and print the headline resilience numbers.
package main

import (
	"fmt"
	"os"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small machine (1,536 nodes) and three production days keep this
	// example under a couple of seconds.
	cfg := logdiver.SmallGeneratorConfig(3)

	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized: %d jobs, %d application runs, %d error-log events\n",
		len(ds.Jobs), len(ds.Runs), len(ds.Events))

	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}

	b := logdiver.Outcomes(res.Runs)
	fmt.Println("\noutcome breakdown:")
	for _, o := range []logdiver.Outcome{
		logdiver.OutcomeSuccess, logdiver.OutcomeUserFailure,
		logdiver.OutcomeWalltime, logdiver.OutcomeSystemFailure,
	} {
		fmt.Printf("  %-9s %6d runs (%5.2f%%)\n", o, b.Counts[o],
			100*float64(b.Counts[o])/float64(b.Total))
	}
	fmt.Printf("\nsystem-failure fraction: %.2f%% (paper, full machine: %.2f%%)\n",
		100*b.SystemFailureFraction(), 100*logdiver.AnchorSystemFraction)
	fmt.Printf("node-hours consumed by system-failed runs: %.2f%% (paper: %.0f%%)\n",
		100*b.SystemNodeHoursFraction(), 100*logdiver.AnchorLostNodeHours)

	// The same result renders the paper's tables directly.
	fmt.Println()
	tbl := logdiver.ExperimentE2(res)
	return tbl.Render(os.Stdout)
}
