// GPU reliability: reproduce the paper's third lesson — hybrid (XK)
// application resiliency is impaired by inadequate error detection. The
// synthesizer knows the true cause of every run's death; comparing the
// pipeline's attribution against that withheld truth exposes how many GPU
// failures die silently (no actionable log evidence), in contrast to CPU
// failures which are nearly always logged.
package main

import (
	"flag"
	"fmt"
	"os"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpu-reliability:", err)
		os.Exit(1)
	}
}

func run() error {
	days := flag.Int("days", 30, "production days to synthesize")
	flag.Parse()

	ds, err := logdiver.Generate(logdiver.ScaledGeneratorConfig(*days))
	if err != nil {
		return err
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}
	truth := logdiver.TrueSystemFailures(ds)

	fmt.Printf("%d runs analyzed; comparing attribution against withheld ground truth\n\n", len(res.Runs))
	fmt.Printf("%-26s %12s %12s %10s %10s\n",
		"population", "true sysfail", "attributed", "coverage", "precision")

	populations := []struct {
		name    string
		class   logdiver.NodeClass
		minSize int
	}{
		{"XE, all scales", logdiver.ClassXE, 0},
		{"XK, all scales", logdiver.ClassXK, 0},
		{"XE, >= 8192 nodes", logdiver.ClassXE, 8192},
		{"XK, >= 3000 nodes", logdiver.ClassXK, 3000},
	}
	for _, p := range populations {
		var subset []logdiver.AttributedRun
		for _, r := range res.Runs {
			if r.Class == p.class && len(r.Nodes) >= p.minSize {
				subset = append(subset, r)
			}
		}
		cov := logdiver.DetectionCoverage(subset, truth, p.class)
		fmt.Printf("%-26s %12d %12d %9.1f%% %9.1f%%\n",
			p.name, cov.TrueSystem, cov.Attributed, 100*cov.Rate(), 100*cov.Precision())
	}

	// Count the silent deaths directly from truth: system-caused failures
	// whose fault left no log evidence at all.
	var xkSystem, xkSilent int
	for apid, tr := range ds.Truth {
		_ = apid
		if tr.Outcome != logdiver.OutcomeSystemFailure {
			continue
		}
		if tr.Category.Group().String() == "GPU" {
			xkSystem++
			if !tr.Detected {
				xkSilent++
			}
		}
	}
	if xkSystem > 0 {
		fmt.Printf("\nGPU-caused failures: %d, of which %d (%.0f%%) left no log evidence.\n",
			xkSystem, xkSilent, 100*float64(xkSilent)/float64(xkSystem))
		fmt.Println("These silent deaths look like user bugs to any log-based tool —")
		fmt.Println("the detection gap the paper identifies on hybrid nodes.")
	}
	return nil
}
