// Error attribution: drill into individual failed runs and show the
// evidence chain the pipeline used — the run's placement and lifetime, the
// qualifying error event that explains its death, and how far from the
// death instant the evidence was logged. This is the per-run view behind
// the aggregate tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"logdiver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error-attribution:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days = flag.Int("days", 5, "production days to synthesize")
		show = flag.Int("show", 8, "how many attributed failures to display")
	)
	flag.Parse()

	cfg := logdiver.ScaledGeneratorConfig(*days)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Workload.JobsPerDay = 400
	cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
	cfg.Workload.XKCapabilitySizes = []int{64, 160}
	cfg.Workload.FullScaleKneeXE = 512
	cfg.Workload.FullScaleKneeXK = 160
	cfg.Workload.SmallSizeMax = 96

	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}

	shown := 0
	for _, r := range res.Runs {
		if r.Outcome != logdiver.OutcomeSystemFailure || !r.HasEvidence {
			continue
		}
		shown++
		fmt.Printf("apid %d  (%s, job %s, user %s)\n", r.ApID, r.Cmd, r.JobID, r.User)
		fmt.Printf("  placement : %d %s nodes\n", len(r.Nodes), r.Class)
		fmt.Printf("  lifetime  : %s -> %s (%s)\n",
			r.Start.Format("2006-01-02 15:04:05"),
			r.End.Format("15:04:05"), r.Duration().Round(1e9))
		fmt.Printf("  exit      : code=%d signal=%d\n", r.ExitCode, r.Signal)
		fmt.Printf("  cause     : %s (%s)\n", r.Cause, r.Cause.Group())
		delta := r.Evidence.Time.Sub(r.End).Round(1e9)
		side := "before"
		if delta > 0 {
			side = "after"
		} else {
			delta = -delta
		}
		where := r.Evidence.Cname
		if r.Evidence.IsSystemWide() {
			where = "machine-wide"
		}
		fmt.Printf("  evidence  : [%s] %q\n", where, r.Evidence.Message)
		fmt.Printf("              logged %s %s the application died\n\n", delta, side)

		// Cross-check against the withheld ground truth.
		truth := ds.Truth[r.ApID]
		if truth.Outcome != logdiver.OutcomeSystemFailure {
			fmt.Printf("  NOTE: ground truth says %s — a coincidental event misled the join\n\n", truth.Outcome)
		}
		if shown >= *show {
			break
		}
	}
	if shown == 0 {
		return fmt.Errorf("no attributed system failures in %d days; increase -days", *days)
	}

	// Summarize the machine-level view the coalescer produced.
	fmt.Printf("coalescing: %s\n", res.Coalesce)
	return nil
}
