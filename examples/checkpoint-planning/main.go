// Checkpoint planning: turn the measured interrupt rates into an
// operational answer — how often should an application at scale X
// checkpoint, and what does the machine's reliability cost it? This is the
// follow-on question the paper's MTTI measurements exist to answer.
package main

import (
	"flag"
	"fmt"
	"os"

	"logdiver"
	"logdiver/internal/checkpoint"
	"logdiver/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint-planning:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days       = flag.Int("days", 20, "production days to synthesize")
		ckptMin    = flag.Float64("checkpoint-minutes", 7, "cost of writing one checkpoint")
		restartMin = flag.Float64("restart-minutes", 12, "cost of restarting from a checkpoint")
	)
	flag.Parse()

	ds, err := logdiver.Generate(logdiver.ScaledGeneratorConfig(*days))
	if err != nil {
		return err
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}

	bounds := []int{1, 1024, 8192, 16384, 22637}
	buckets, err := metrics.MTTIByScale(res.Runs, bounds, 0)
	if err != nil {
		return err
	}

	fmt.Printf("measured over %d runs (%d synthesized days)\n\n", len(res.Runs), *days)
	fmt.Printf("%-14s %9s %10s %12s %11s %12s\n",
		"nodes", "MTTI (h)", "Young (h)", "Daly (h)", "efficiency", "no-ckpt 24h")
	for _, b := range buckets {
		label := fmt.Sprintf("%d-%d", b.Lo, b.Hi-1)
		if b.Interrupts == 0 {
			fmt.Printf("%-14s %9s\n", label, "no interrupts observed")
			continue
		}
		p := checkpoint.Params{
			MTTIHours:       b.MTTIHours,
			CheckpointHours: *ckptMin / 60,
			RestartHours:    *restartMin / 60,
		}
		plan, err := checkpoint.BuildPlan(p, 24)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %9.1f %10.2f %12.2f %10.1f%% %11.1f%%\n",
			label, b.MTTIHours, plan.YoungHours, plan.DalyHours,
			100*plan.EfficiencyAtDaly, 100*plan.EfficiencyUnprotected)
	}
	fmt.Println("\nReading: a 24-hour full-scale run without checkpointing survives with")
	fmt.Println("the rightmost probability; with Daly-interval checkpoints it keeps the")
	fmt.Println("'efficiency' fraction of its node-hours as useful work.")
	return nil
}
