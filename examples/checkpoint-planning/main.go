// Checkpoint planning: turn the measured interrupt rates into an
// operational answer — how often should an application at scale X
// checkpoint, and what does the machine's reliability cost it? This is the
// follow-on question the paper's MTTI measurements exist to answer.
//
// The plan comes from the whatif policy layer (the same math `logdiver
// simulate` and /v1/whatif apply), so what this prints is exactly what the
// counterfactual simulator would charge a run under the policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"logdiver"
	"logdiver/internal/metrics"
	"logdiver/internal/whatif"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint-planning:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days       = flag.Int("days", 20, "production days to synthesize")
		ckptMin    = flag.Float64("checkpoint-minutes", 7, "cost of writing one checkpoint")
		restartMin = flag.Float64("restart-minutes", 12, "cost of restarting from a checkpoint")
	)
	flag.Parse()

	ds, err := logdiver.Generate(logdiver.ScaledGeneratorConfig(*days))
	if err != nil {
		return err
	}
	res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
	if err != nil {
		return err
	}

	bounds := []int{1, 1024, 8192, 16384, 22637}
	buckets, err := metrics.MTTIByScale(res.Runs, bounds, 0)
	if err != nil {
		return err
	}

	// A Daly-interval checkpoint/restart policy, stated exactly as a
	// `logdiver simulate -policy` file or a /v1/whatif request would.
	pol := whatif.Policy{
		Name:           "planning",
		Checkpoint:     whatif.CheckpointDaly,
		CheckpointCost: time.Duration(*ckptMin * float64(time.Minute)),
		RestartCost:    time.Duration(*restartMin * float64(time.Minute)),
	}
	plans, err := whatif.PlanByScale(buckets, pol, 24)
	if err != nil {
		return err
	}

	fmt.Printf("measured over %d runs (%d synthesized days)\n\n", len(res.Runs), *days)
	fmt.Printf("%-14s %9s %10s %12s %11s %12s\n",
		"nodes", "MTTI (h)", "Young (h)", "Daly (h)", "efficiency", "no-ckpt 24h")
	for _, p := range plans {
		if p.Interrupts == 0 {
			fmt.Printf("%-14s %9s\n", p.Label, "no interrupts observed")
			continue
		}
		fmt.Printf("%-14s %9.1f %10.2f %12.2f %10.1f%% %11.1f%%\n",
			p.Label, p.MTTIHours, p.Plan.YoungHours, p.Plan.DalyHours,
			100*p.Plan.EfficiencyAtDaly, 100*p.Plan.EfficiencyUnprotected)
	}
	fmt.Println("\nReading: a 24-hour full-scale run without checkpointing survives with")
	fmt.Println("the rightmost probability; with Daly-interval checkpoints it keeps the")
	fmt.Println("'efficiency' fraction of its node-hours as useful work. To see what the")
	fmt.Println("policy changes run-by-run, feed the same policy to `logdiver simulate`.")
	return nil
}
