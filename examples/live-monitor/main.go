// Live monitor: run the online serving stack in one process — synthesize a
// day of small-machine field data into a scratch directory, ingest it with
// the snapshot store's tailer/syncer, serve the query API on a loopback
// port, and query it like an operator would. Then append a second day to
// the same archives, sync again, and watch the snapshot epoch advance while
// only part of the run population is re-attributed.
//
// This is the library-level view of what `logdiverd` automates with a poll
// loop and signal handling.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"logdiver"
	"logdiver/internal/serve"
	"logdiver/internal/store"
	"logdiver/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "live-monitor")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Day one of production lands in the archive directory.
	if err := writeDay(dir, 0, 41); err != nil {
		return err
	}

	top, err := logdiver.NewTopology(logdiver.SmallMachine())
	if err != nil {
		return err
	}
	st := store.New()
	sy, err := store.NewSyncer(store.SyncerConfig{
		Tailer:   store.NewTailer(dir),
		Store:    st,
		Topology: top,
	})
	if err != nil {
		return err
	}
	if _, err := sy.Sync(); err != nil {
		return err
	}
	snap := st.Current()
	fmt.Printf("ingested day 1: epoch %d, %d runs, %d events\n",
		snap.Epoch, len(snap.Result.Runs), len(snap.Result.Events))

	// Serve the latest snapshot on a loopback port.
	srv, err := serve.New(serve.Config{Store: st, Version: version.Get()})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l, 2*time.Second) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	if err := show(base, "/v1/outcomes"); err != nil {
		return err
	}
	if err := show(base, "/v1/health"); err != nil {
		return err
	}

	// Day two arrives: append to the same archives and sync. The epoch
	// advances and queries immediately see the larger population; runs far
	// from the new data keep their attribution without being redone.
	if err := writeDay(dir, 1, 42); err != nil {
		return err
	}
	if _, err := sy.Sync(); err != nil {
		return err
	}
	snap = st.Current()
	fmt.Printf("ingested day 2: epoch %d, %d runs (%d re-attributed this round)\n\n",
		snap.Epoch, len(snap.Result.Runs), snap.Ingest.Reattributed)

	if err := show(base, "/v1/outcomes"); err != nil {
		return err
	}

	cancel()
	return <-serveDone
}

// writeDay appends one generated day to the conventional archive files.
func writeDay(dir string, offsetDays int, seed int64) error {
	cfg := logdiver.SmallGeneratorConfig(1)
	cfg.Seed = seed
	cfg.Start = cfg.Start.AddDate(0, 0, offsetDays)
	ds, err := logdiver.Generate(cfg)
	if err != nil {
		return err
	}
	for _, a := range []struct {
		name  string
		write func(io.Writer) error
	}{
		{store.AccountingFile, ds.WriteAccounting},
		{store.ApsysFile, ds.WriteApsys},
		{store.SyslogFile, ds.WriteErrorLog},
	} {
		f, err := os.OpenFile(filepath.Join(dir, a.name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := a.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// show fetches one endpoint and prints a compacted view of its JSON.
func show(base, path string) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	var buf json.RawMessage = body
	compact, err := json.Marshal(buf)
	if err != nil {
		return err
	}
	fmt.Printf("GET %s\n  %s\n\n", path, truncate(string(compact), 300))
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
