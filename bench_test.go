package logdiver_test

// The benchmark harness: one benchmark per reproduced table/figure (E1-E10,
// A1, A2) plus throughput benchmarks for the pipeline stages. Each
// experiment benchmark regenerates its artifact from a shared synthesized
// dataset, so `go test -bench=.` exercises exactly the code path that
// produced EXPERIMENTS.md.

import (
	"strings"
	"sync"
	"testing"

	"logdiver"
	"logdiver/internal/experiments"
	"logdiver/internal/gen"
	"logdiver/internal/syslogx"
)

// benchState is generated once and shared by every benchmark.
type benchState struct {
	ds  *logdiver.Dataset
	res *logdiver.Result
}

var (
	benchOnce sync.Once
	bench     benchState
)

func benchFixture(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		cfg := logdiver.ScaledGeneratorConfig(6)
		cfg.Machine = logdiver.SmallMachine()
		cfg.Seed = 3
		cfg.Workload.JobsPerDay = 400
		cfg.Workload.XECapabilityJobsPerDay = 3
		cfg.Workload.XKCapabilityJobsPerDay = 1.5
		cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
		cfg.Workload.XKCapabilitySizes = []int{64, 160}
		cfg.Workload.FullScaleKneeXE = 512
		cfg.Workload.FullScaleKneeXK = 160
		cfg.Workload.SmallSizeMax = 96
		cfg.Rates.NodeFatalPerNodeHour *= 20
		cfg.Rates.GPUFatalPerNodeHour *= 100
		ds, err := logdiver.Generate(cfg)
		if err != nil {
			panic(err)
		}
		res, err := logdiver.AnalyzeDataset(ds, logdiver.Options{})
		if err != nil {
			panic(err)
		}
		bench = benchState{ds: ds, res: res}
	})
	return &bench
}

// --- Experiment benchmarks: one per table/figure -------------------------

func BenchmarkE1Workload(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E1Workload(f.res); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkE2Outcomes(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E2Outcomes(f.res); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkE3Categories(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E3Categories(f.res); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkE4ScalingXE(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4ScalingXE(f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ScalingXK(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5ScalingXK(f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Distributions(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6Distributions(f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7MTTI(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7MTTI(f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Timeline(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Timeline(f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9Detection(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E9Detection(f.res, f.ds.Truth); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkE10Coalesce(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E10Coalesce(f.res); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkA1Window(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A1Window(f.res, f.ds.Topology, f.ds.Truth, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2Baseline(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A2Baseline(f.res, f.ds.Topology, f.ds.Truth); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline-stage benchmarks -------------------------------------------

// BenchmarkGenerate measures synthesizer throughput (runs per op reported
// as a custom metric).
func BenchmarkGenerate(b *testing.B) {
	cfg := logdiver.ScaledGeneratorConfig(1)
	cfg.Machine = logdiver.SmallMachine()
	cfg.Workload.JobsPerDay = 300
	cfg.Workload.XECapabilitySizes = []int{256}
	cfg.Workload.XKCapabilitySizes = []int{64}
	cfg.Workload.SmallSizeMax = 96
	b.ResetTimer()
	var runs int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		ds, err := gen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		runs += len(ds.Runs)
	}
	b.ReportMetric(float64(runs)/float64(b.N), "runs/op")
}

// BenchmarkAnalyzeDataset measures the full in-memory pipeline.
func BenchmarkAnalyzeDataset(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := logdiver.AnalyzeDataset(f.ds, logdiver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != len(f.ds.Runs) {
			b.Fatal("run count mismatch")
		}
	}
	b.ReportMetric(float64(len(f.ds.Runs)), "runs/op")
}

// BenchmarkAnalyzeArchives measures the text-parsing pipeline end to end.
func BenchmarkAnalyzeArchives(b *testing.B) {
	f := benchFixture(b)
	var acc, aps, sys strings.Builder
	if err := f.ds.WriteAccounting(&acc); err != nil {
		b.Fatal(err)
	}
	if err := f.ds.WriteApsys(&aps); err != nil {
		b.Fatal(err)
	}
	if err := f.ds.WriteErrorLog(&sys); err != nil {
		b.Fatal(err)
	}
	accS, apsS, sysS := acc.String(), aps.String(), sys.String()
	b.SetBytes(int64(len(accS) + len(apsS) + len(sysS)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := logdiver.Analyze(logdiver.Archives{
			Accounting: strings.NewReader(accS),
			Apsys:      strings.NewReader(apsS),
			Syslog:     strings.NewReader(sysS),
		}, f.ds.Topology, logdiver.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != len(f.ds.Runs) {
			b.Fatal("run count mismatch")
		}
	}
}

// ingestState is the raw-text fixture for the ingestion benchmarks: a
// 30-day archive set rendered once and shared by every sub-benchmark.
type ingestState struct {
	ds            *logdiver.Dataset
	acc, aps, sys string
}

var (
	ingestOnce  sync.Once
	ingestBench ingestState
)

// ingestFixture synthesizes a 30-day small-machine span with the benign
// noise rate raised so the syslog archive is parse-dominated (several MB of
// classified lines), which is what parallel ingestion shards.
func ingestFixture(b *testing.B) *ingestState {
	b.Helper()
	ingestOnce.Do(func() {
		cfg := logdiver.ScaledGeneratorConfig(30)
		cfg.Machine = logdiver.SmallMachine()
		cfg.Seed = 5
		cfg.Workload.JobsPerDay = 400
		cfg.Workload.XECapabilitySizes = []int{256, 512, 900}
		cfg.Workload.XKCapabilitySizes = []int{64, 160}
		cfg.Workload.FullScaleKneeXE = 512
		cfg.Workload.FullScaleKneeXK = 160
		cfg.Workload.SmallSizeMax = 96
		cfg.Rates.NodeBenignPerNodeHour *= 50
		ds, err := logdiver.Generate(cfg)
		if err != nil {
			panic(err)
		}
		var acc, aps, sys strings.Builder
		if err := ds.WriteAccounting(&acc); err != nil {
			panic(err)
		}
		if err := ds.WriteApsys(&aps); err != nil {
			panic(err)
		}
		if err := ds.WriteErrorLog(&sys); err != nil {
			panic(err)
		}
		ingestBench = ingestState{ds: ds, acc: acc.String(), aps: aps.String(), sys: sys.String()}
	})
	return &ingestBench
}

func benchAnalyze(b *testing.B, f *ingestState, parallelism int) {
	b.Helper()
	b.SetBytes(int64(len(f.acc) + len(f.aps) + len(f.sys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := logdiver.Analyze(logdiver.Archives{
			Accounting: strings.NewReader(f.acc),
			Apsys:      strings.NewReader(f.aps),
			Syslog:     strings.NewReader(f.sys),
		}, f.ds.Topology, logdiver.Options{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) != len(f.ds.Runs) {
			b.Fatal("run count mismatch")
		}
	}
}

// BenchmarkAnalyze measures the raw-text pipeline on a 30-day archive set,
// sequential vs parallel ingestion. cmd/benchgate compares the two
// sub-benchmarks and fails CI when the parallel path regresses on a
// multi-core runner (GOMAXPROCS >= 4).
func BenchmarkAnalyze(b *testing.B) {
	f := ingestFixture(b)
	b.Run("serial", func(b *testing.B) { benchAnalyze(b, f, 1) })
	b.Run("parallel", func(b *testing.B) { benchAnalyze(b, f, 0) })
}

// BenchmarkSyslogParse measures raw line-parser throughput.
func BenchmarkSyslogParse(b *testing.B) {
	f := benchFixture(b)
	var sys strings.Builder
	if err := f.ds.WriteErrorLog(&sys); err != nil {
		b.Fatal(err)
	}
	text := sys.String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := syslogx.NewScanner(strings.NewReader(text))
		var n int
		for sc.Scan() {
			n++
		}
		if n == 0 {
			b.Fatal("no lines parsed")
		}
	}
}
